/**
 * @file
 * Tests for the differential fuzz harness itself.
 *
 * The heavy 64+ seed sweep lives in the mpos_fuzz binary; here a small
 * seed x CPU-count matrix runs inside the test suite so every ctest
 * invocation exercises the fast-vs-reference comparison end to end,
 * plus unit tests for the script generator's guarantees and the
 * failing-prefix minimizer.
 */

#include <gtest/gtest.h>

#include "sim/check/fuzz.hh"

using namespace mpos;
using sim::FuzzOptions;
using sim::ItemKind;
using sim::MarkerOp;
using sim::ScriptItem;

namespace
{

FuzzOptions
quickOptions(uint32_t num_cpus)
{
    FuzzOptions opt;
    opt.numCpus = num_cpus;
    opt.scriptLen = 1200;
    opt.runCycles = 25000;
    return opt;
}

} // namespace

TEST(FuzzScripts, DeterministicPerSeed)
{
    const FuzzOptions opt = quickOptions(4);
    const auto a = sim::buildFuzzScripts(42, opt);
    const auto b = sim::buildFuzzScripts(42, opt);
    ASSERT_EQ(a.size(), b.size());
    for (size_t c = 0; c < a.size(); ++c) {
        ASSERT_EQ(a[c].size(), b[c].size()) << "cpu " << c;
        for (size_t i = 0; i < a[c].size(); ++i) {
            EXPECT_EQ(a[c][i].kind, b[c][i].kind);
            EXPECT_EQ(a[c][i].addr, b[c][i].addr);
            EXPECT_EQ(a[c][i].arg2, b[c][i].arg2);
        }
    }
}

TEST(FuzzScripts, DifferentSeedsDiffer)
{
    const FuzzOptions opt = quickOptions(2);
    const auto a = sim::buildFuzzScripts(1, opt);
    const auto b = sim::buildFuzzScripts(2, opt);
    bool differ = false;
    for (size_t c = 0; c < a.size() && !differ; ++c) {
        for (size_t i = 0; i < a[c].size() && !differ; ++i) {
            differ = a[c][i].kind != b[c][i].kind ||
                     a[c][i].addr != b[c][i].addr;
        }
    }
    EXPECT_TRUE(differ);
}

TEST(FuzzScripts, GeneratorInvariants)
{
    const FuzzOptions opt = quickOptions(4);
    const sim::MachineConfig mc = opt.machineConfig();
    for (uint64_t seed : {3u, 17u, 99u}) {
        const auto scripts = sim::buildFuzzScripts(seed, opt);
        ASSERT_EQ(scripts.size(), opt.numCpus);
        for (const auto &script : scripts) {
            // The last draw may emit a short burst (lock polls), so
            // the generator can overshoot by a few items.
            EXPECT_GE(script.size(), opt.scriptLen);
            EXPECT_LE(script.size(), opt.scriptLen + 3);
            int os_depth = 0;
            for (const ScriptItem &it : script) {
                // Cached references stay inside modeled memory;
                // uncached ones are the only out-of-range traffic.
                switch (it.kind) {
                case ItemKind::Load:
                case ItemKind::Store:
                case ItemKind::IFetchLine:
                case ItemKind::BypassLoad:
                case ItemKind::BypassStore:
                case ItemKind::PrefetchLoad:
                case ItemKind::PrefetchStore:
                    EXPECT_LT(it.addr, mc.memBytes);
                    break;
                case ItemKind::UncachedLoad:
                case ItemKind::UncachedStore:
                    EXPECT_GE(it.addr, mc.memBytes);
                    break;
                default:
                    break;
                }
                // OS enter/exit markers strictly alternate per CPU,
                // so any prefix is a well-formed monitor stream.
                if (it.kind == ItemKind::Marker) {
                    if (it.marker == MarkerOp::OsEnter) {
                        EXPECT_EQ(os_depth, 0);
                        os_depth = 1;
                    } else if (it.marker == MarkerOp::OsExit) {
                        EXPECT_EQ(os_depth, 1);
                        os_depth = 0;
                    }
                }
            }
        }
    }
}

TEST(FuzzMinimizer, FindsSmallestFailingPrefix)
{
    // fails(k) <=> k >= 37: the minimizer must land exactly there.
    uint64_t probes = 0;
    const uint64_t k = sim::minimizeFailingPrefix(
        1000, [&probes](uint64_t n) {
            ++probes;
            return n >= 37;
        });
    EXPECT_EQ(k, 37u);
    EXPECT_LE(probes, 12u); // ~log2(1000) probes, not a linear scan
}

TEST(FuzzMinimizer, HandlesEdges)
{
    EXPECT_EQ(sim::minimizeFailingPrefix(
                  1, [](uint64_t) { return true; }),
              1u);
    EXPECT_EQ(sim::minimizeFailingPrefix(
                  500, [](uint64_t n) { return n >= 500; }),
              500u);
    EXPECT_EQ(sim::minimizeFailingPrefix(
                  500, [](uint64_t n) { return n >= 1; }),
              1u);
}

TEST(FuzzDifferential, SingleSeedMatchesAndChecks)
{
    const sim::FuzzOutcome out =
        sim::runDifferential(7, quickOptions(4));
    EXPECT_TRUE(out.ok) << out.detail;
    EXPECT_TRUE(out.violations.empty());
    EXPECT_GT(out.eventsCompared, 0u);
    EXPECT_GT(out.checksPerformed, 0u);
}

TEST(FuzzDifferential, PrefixTruncationStillRuns)
{
    const sim::FuzzOutcome out =
        sim::runDifferential(7, quickOptions(2), 25);
    EXPECT_TRUE(out.ok) << out.detail;
}

TEST(FuzzDifferential, SmallMatrixAllCpuCountsPass)
{
    const sim::FuzzMatrixResult res = sim::runFuzzMatrix(
        100, 4, {1, 2, 4}, quickOptions(4));
    EXPECT_EQ(res.runs, 12u);
    EXPECT_TRUE(res.ok());
    for (const sim::FuzzFailure &f : res.failures) {
        ADD_FAILURE() << "seed " << f.seed << " cpus " << f.numCpus
                      << " prefix " << f.minimalPrefix << ": "
                      << f.detail;
    }
    EXPECT_GT(res.eventsCompared, 0u);
    EXPECT_GT(res.checksPerformed, 0u);
}
