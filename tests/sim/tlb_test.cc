/** @file Unit tests for the PID-tagged fully-associative TLB. */

#include <gtest/gtest.h>

#include "sim/tlb.hh"

using mpos::sim::Tlb;
using mpos::sim::TlbEntry;

TEST(Tlb, InsertAndLookup)
{
    Tlb t(4);
    t.insert(1, 0x10, 0x99, true);
    const TlbEntry *e = t.lookup(1, 0x10);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->ppage, 0x99u);
    EXPECT_TRUE(e->writable);
}

TEST(Tlb, PidIsolation)
{
    Tlb t(4);
    t.insert(1, 0x10, 0x99, true);
    EXPECT_EQ(t.lookup(2, 0x10), nullptr);
}

TEST(Tlb, FifoReplacement)
{
    Tlb t(2);
    t.insert(1, 0xa, 1, false);
    t.insert(1, 0xb, 2, false);
    t.insert(1, 0xc, 3, false); // evicts 0xa
    EXPECT_EQ(t.lookup(1, 0xa), nullptr);
    EXPECT_NE(t.lookup(1, 0xb), nullptr);
    EXPECT_NE(t.lookup(1, 0xc), nullptr);
}

TEST(Tlb, InsertRefreshesInPlace)
{
    Tlb t(2);
    t.insert(1, 0xa, 1, false);
    t.insert(1, 0xa, 7, true); // same page: update, no eviction slot
    const TlbEntry *e = t.lookup(1, 0xa);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->ppage, 7u);
    EXPECT_TRUE(e->writable);
    EXPECT_EQ(t.residentEntries(), 1u);
}

TEST(Tlb, InvalidateSingle)
{
    Tlb t(4);
    t.insert(1, 0xa, 1, false);
    t.invalidate(1, 0xa);
    EXPECT_EQ(t.lookup(1, 0xa), nullptr);
}

TEST(Tlb, InvalidatePid)
{
    Tlb t(8);
    t.insert(1, 0xa, 1, false);
    t.insert(1, 0xb, 2, false);
    t.insert(2, 0xa, 3, false);
    t.invalidatePid(1);
    EXPECT_EQ(t.lookup(1, 0xa), nullptr);
    EXPECT_EQ(t.lookup(1, 0xb), nullptr);
    EXPECT_NE(t.lookup(2, 0xa), nullptr);
}

TEST(Tlb, InvalidatePhys)
{
    Tlb t(8);
    t.insert(1, 0xa, 42, false);
    t.insert(2, 0xb, 42, false);
    t.insert(2, 0xc, 43, false);
    t.invalidatePhys(42);
    EXPECT_EQ(t.lookup(1, 0xa), nullptr);
    EXPECT_EQ(t.lookup(2, 0xb), nullptr);
    EXPECT_NE(t.lookup(2, 0xc), nullptr);
}

TEST(Tlb, FlushAll)
{
    Tlb t(8);
    t.insert(1, 0xa, 1, false);
    t.insert(2, 0xb, 2, false);
    t.flush();
    EXPECT_EQ(t.residentEntries(), 0u);
}

TEST(Tlb, HitMissCounters)
{
    Tlb t(4);
    t.insert(1, 0xa, 1, false);
    t.translate(1, 0xa);
    t.translate(1, 0xb);
    EXPECT_EQ(t.hits, 1u);
    EXPECT_EQ(t.misses, 1u);
}

TEST(Tlb, CapacityIs64ByDefault)
{
    Tlb t;
    EXPECT_EQ(t.size(), 64u);
    for (uint32_t i = 0; i < 64; ++i)
        t.insert(1, i, i, false);
    EXPECT_EQ(t.residentEntries(), 64u);
    // One more evicts the oldest.
    t.insert(1, 100, 100, false);
    EXPECT_EQ(t.residentEntries(), 64u);
    EXPECT_EQ(t.lookup(1, 0), nullptr);
}
