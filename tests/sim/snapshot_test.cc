/** @file Snapshot container and machine save/restore tests. */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/check/fuzz.hh"
#include "sim/machine.hh"
#include "sim/snapshot/container.hh"
#include "util/binio.hh"
#include "util/error.hh"

using namespace mpos;
using sim::snapshot::Section;

namespace
{

std::vector<uint8_t>
sampleImage()
{
    util::ByteWriter m, k;
    m.u64(0x1111);
    m.str("machine-bytes");
    k.u64(0x2222);
    std::vector<std::pair<Section, std::vector<uint8_t>>> sections;
    sections.emplace_back(Section::Machine, m.take());
    sections.emplace_back(Section::Kernel, k.take());
    return sim::snapshot::pack(0xfeedfacecafef00dULL,
                               std::move(sections));
}

} // namespace

TEST(SnapshotContainer, PackParseRoundTrip)
{
    const std::vector<uint8_t> image = sampleImage();
    const sim::snapshot::Parsed p = sim::snapshot::parse(image);
    EXPECT_EQ(p.configHash(), 0xfeedfacecafef00dULL);

    util::ByteReader r(p.section(Section::Machine));
    EXPECT_EQ(r.u64(), 0x1111u);
    EXPECT_EQ(r.str(), "machine-bytes");
    EXPECT_TRUE(r.atEnd());

    util::ByteReader rk(p.section(Section::Kernel));
    EXPECT_EQ(rk.u64(), 0x2222u);

    EXPECT_THROW(p.section(Section::Workload), util::SimError);
}

TEST(SnapshotContainer, EveryByteFlipIsDetected)
{
    const std::vector<uint8_t> image = sampleImage();
    for (size_t i = 0; i < image.size(); ++i) {
        std::vector<uint8_t> bad = image;
        bad[i] ^= 0x40;
        try {
            (void)sim::snapshot::parse(bad);
            FAIL() << "flip at byte " << i << " went undetected";
        } catch (const util::SimError &e) {
            EXPECT_EQ(e.code(), util::ErrCode::SnapshotCorrupt)
                << "flip at byte " << i;
        }
    }
}

TEST(SnapshotContainer, TruncationIsDetected)
{
    const std::vector<uint8_t> image = sampleImage();
    for (size_t keep : {size_t(0), size_t(4), image.size() - 1}) {
        std::vector<uint8_t> bad(image.begin(),
                                 image.begin() + long(keep));
        EXPECT_THROW((void)sim::snapshot::parse(bad), util::SimError)
            << "kept " << keep << " bytes";
    }
}

TEST(SnapshotContainer, FileRoundTripAtomic)
{
    const std::string path =
        testing::TempDir() + "/mpos_snapshot_test.bin";
    const std::vector<uint8_t> image = sampleImage();
    ASSERT_TRUE(sim::snapshot::writeFileAtomic(path, image));
    std::vector<uint8_t> back;
    ASSERT_TRUE(sim::snapshot::readFile(path, back));
    EXPECT_EQ(back, image);
    std::remove(path.c_str());
    EXPECT_FALSE(sim::snapshot::readFile(path, back));
}

TEST(SnapshotMachine, RestoreIntoWrongGeometryRaises)
{
    sim::FuzzOptions opt;
    opt.numCpus = 2;
    opt.scriptLen = 200;
    opt.runCycles = 4000;
    sim::MachineConfig cfg = opt.machineConfig();
    cfg.check = false;

    sim::Machine m(cfg, opt.numLocks);
    util::ByteWriter w;
    m.saveState(w);
    const std::vector<uint8_t> state = w.take();

    sim::MachineConfig other = cfg;
    other.numCpus = 4;
    sim::Machine m2(other, opt.numLocks);
    util::ByteReader r(state);
    EXPECT_THROW(m2.restoreState(r), util::SimError);
}

/**
 * The core differential: cutting a run at an arbitrary cycle,
 * serializing through the container, restoring into a fresh machine
 * and continuing must reproduce the uninterrupted run's event stream
 * and final state bit for bit -- with the coherence checker watching
 * both sides of the boundary.
 */
TEST(SnapshotMachine, DifferentialAcrossRestoreBoundary)
{
    sim::FuzzOptions opt;
    opt.scriptLen = 1200;
    opt.runCycles = 20000;
    for (uint32_t cpus : {1u, 2u, 4u}) {
        opt.numCpus = cpus;
        for (uint64_t seed : {3u, 11u}) {
            const sim::FuzzOutcome out =
                sim::runSnapshotDifferential(seed, opt, 7000);
            EXPECT_TRUE(out.ok)
                << "cpus=" << cpus << " seed=" << seed << ": "
                << out.detail;
            EXPECT_GT(out.eventsCompared, 0u);
        }
    }
}

TEST(SnapshotMachine, CutPointIsClamped)
{
    sim::FuzzOptions opt;
    opt.numCpus = 2;
    opt.scriptLen = 400;
    opt.runCycles = 6000;
    // Degenerate cut points clamp into [1, runCycles - 1] and still
    // satisfy the differential.
    for (sim::Cycle at : {sim::Cycle(0), sim::Cycle(6000),
                          sim::Cycle(1u << 30)}) {
        const sim::FuzzOutcome out =
            sim::runSnapshotDifferential(5, opt, at);
        EXPECT_TRUE(out.ok) << "at=" << at << ": " << out.detail;
    }
}
