/**
 * @file
 * Replacement-policy conformance: the packed per-way LRU bookkeeping
 * in sim::Cache is checked against a brute-force reference model (a
 * recency-ordered list per set) -- exhaustively for every short
 * access sequence over a tiny cache, then with long random streams
 * over several geometries, and finally assoc=1 is pinned to the
 * plain direct-mapped discipline (victim = the set's sole occupant).
 */

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "sim/cache.hh"
#include "util/rng.hh"

using mpos::sim::Addr;
using mpos::sim::Cache;
using mpos::sim::Victim;

namespace
{

/** Brute-force true-LRU reference: per set, a most-recent-first list
 *  of resident line addresses. */
class ModelCache
{
  public:
    ModelCache(uint64_t bytes, uint32_t assoc, uint32_t line_bytes)
        : ways(assoc), lineBytes(line_bytes),
          setsOf(bytes / (uint64_t(assoc) * line_bytes)),
          sets(setsOf)
    {
    }

    bool
    touch(Addr addr)
    {
        auto &s = sets[setIdx(addr)];
        const Addr line = lineOf(addr);
        for (size_t i = 0; i < s.size(); ++i) {
            if (s[i] == line) {
                s.erase(s.begin() + long(i));
                s.insert(s.begin(), line);
                return true;
            }
        }
        return false;
    }

    /** Returns the displaced line, if the fill evicted one. */
    std::optional<Addr>
    fill(Addr addr)
    {
        if (touch(addr))
            return std::nullopt; // already resident: refresh only
        auto &s = sets[setIdx(addr)];
        s.insert(s.begin(), lineOf(addr));
        if (s.size() > ways) {
            const Addr victim = s.back();
            s.pop_back();
            return victim;
        }
        return std::nullopt;
    }

    bool
    contains(Addr addr) const
    {
        const auto &s = sets[setIdx(addr)];
        const Addr line = lineOf(addr);
        for (const Addr a : s)
            if (a == line)
                return true;
        return false;
    }

    bool
    invalidate(Addr addr)
    {
        auto &s = sets[setIdx(addr)];
        const Addr line = lineOf(addr);
        for (size_t i = 0; i < s.size(); ++i) {
            if (s[i] == line) {
                s.erase(s.begin() + long(i));
                return true;
            }
        }
        return false;
    }

  private:
    Addr lineOf(Addr a) const { return a & ~Addr(lineBytes - 1); }
    uint64_t
    setIdx(Addr a) const
    {
        return (a / lineBytes) % setsOf;
    }

    uint64_t ways;
    uint32_t lineBytes;
    uint64_t setsOf;
    std::vector<std::vector<Addr>> sets;
};

/** Drive both implementations with one access and compare outcomes:
 *  hit/miss agreement, victim agreement, residency agreement. */
void
step(Cache &c, ModelCache &m, Addr a, bool inval,
     const std::vector<Addr> &universe)
{
    if (inval) {
        EXPECT_EQ(c.invalidate(a), m.invalidate(a)) << std::hex << a;
    } else {
        const bool hit = c.touch(a);
        EXPECT_EQ(hit, m.touch(a)) << std::hex << a;
        if (!hit) {
            const Victim v = c.fill(a);
            const auto mv = m.fill(a);
            EXPECT_EQ(v.valid, mv.has_value()) << std::hex << a;
            if (v.valid && mv)
                EXPECT_EQ(v.lineAddr, *mv) << std::hex << a;
        }
    }
    for (const Addr u : universe)
        EXPECT_EQ(c.contains(u), m.contains(u)) << std::hex << u;
}

} // namespace

/** Every access sequence of length 6 from an 8-line universe over a
 *  one-set 3-way cache: eviction order must match the model exactly.
 *  One set means every access contends, so this exhausts the LRU
 *  update orderings (8^6 = 262,144 sequences). */
TEST(LruModel, ExhaustiveShortSequencesOneSet)
{
    constexpr uint32_t lineBytes = 16;
    constexpr int universeLines = 8;
    constexpr int depth = 6;
    std::vector<Addr> universe;
    for (int i = 0; i < universeLines; ++i)
        universe.push_back(Addr(i) * lineBytes);

    uint64_t total = 1;
    for (int i = 0; i < depth; ++i)
        total *= universeLines;

    for (uint64_t seq = 0; seq < total; ++seq) {
        Cache c("t", 3 * lineBytes, 3, lineBytes); // 1 set, 3 ways
        ModelCache m(3 * lineBytes, 3, lineBytes);
        uint64_t s = seq;
        for (int i = 0; i < depth; ++i) {
            step(c, m, universe[s % universeLines], false, universe);
            s /= universeLines;
        }
        if (::testing::Test::HasFailure()) {
            ADD_FAILURE() << "first failing sequence id " << seq;
            return;
        }
    }
}

/** Long random streams (touch/fill/invalidate mixed) across the
 *  associativities the machine config can select. */
TEST(LruModel, RandomStreamsAcrossGeometries)
{
    constexpr uint32_t lineBytes = 16;
    const struct
    {
        uint64_t bytes;
        uint32_t assoc;
    } geoms[] = {
        {256, 1}, {256, 2}, {512, 4}, {1024, 8}, {2048, 16},
    };

    for (const auto &g : geoms) {
        Cache c("t", g.bytes, g.assoc, lineBytes);
        ModelCache m(g.bytes, g.assoc, lineBytes);
        mpos::util::Rng rng(g.bytes ^ g.assoc);
        const uint64_t lines = g.bytes / lineBytes;
        std::vector<Addr> universe;
        for (uint64_t i = 0; i < lines * 3; ++i)
            universe.push_back(Addr(i) * lineBytes);

        for (int i = 0; i < 20000; ++i) {
            const Addr a =
                universe[rng.below(uint64_t(universe.size()))];
            step(c, m, a, rng.below(8) == 0, universe);
            if (::testing::Test::HasFailure()) {
                ADD_FAILURE() << "geometry " << g.bytes << "B/"
                              << g.assoc << "-way, op " << i;
                return;
            }
        }
        EXPECT_EQ(c.checkIntegrity([](const std::string &what) {
                      ADD_FAILURE() << what;
                  }),
                  0u)
            << g.bytes << "B/" << g.assoc << "-way";
    }
}

/** assoc=1 must behave exactly as a classic direct-mapped cache: a
 *  fill's victim is whatever the modulo-indexed set held. */
TEST(LruModel, Assoc1IsDirectMapped)
{
    constexpr uint32_t lineBytes = 16;
    constexpr uint64_t bytes = 512; // 32 sets
    const uint64_t numSets = bytes / lineBytes;
    Cache c("t", bytes, 1, lineBytes);
    std::vector<std::optional<Addr>> direct(numSets);
    mpos::util::Rng rng(11);

    for (int i = 0; i < 50000; ++i) {
        const Addr a = Addr(rng.below(numSets * 4)) * lineBytes;
        const uint64_t set = (a / lineBytes) % numSets;
        const bool hit = c.touch(a);
        EXPECT_EQ(hit, direct[set] == a) << std::hex << a;
        if (!hit) {
            const Victim v = c.fill(a);
            EXPECT_EQ(v.valid, direct[set].has_value());
            if (v.valid && direct[set])
                EXPECT_EQ(v.lineAddr, *direct[set]);
            direct[set] = a;
        }
        if (::testing::Test::HasFailure()) {
            ADD_FAILURE() << "op " << i;
            return;
        }
    }
}
