/**
 * @file
 * Golden-counters equivalence test for the event-driven simulation
 * fast paths.
 *
 * The cycle-skipping scheduler, the snoop-filter bit walks, and the
 * packed cache/monitor fast paths are pure optimizations: they must
 * not change a single simulated event. This test runs the same
 * experiment twice -- once through the fast paths and once with
 * MachineConfig::slowSim selecting the one-cycle-at-a-time reference
 * scheduler and full snoop walks -- and requires every observable
 * counter to be identical: bus transactions, per-class miss counts,
 * and the per-mode cycle accounting.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"

using namespace mpos;
using core::MissCounts;
using core::numMissClasses;

namespace
{

core::ExperimentConfig
smallConfig(workload::WorkloadKind kind, bool slow)
{
    core::ExperimentConfig cfg;
    cfg.kind = kind;
    cfg.warmupCycles = 200000;
    cfg.measureCycles = 1000000;
    cfg.machine.slowSim = slow;
    return cfg;
}

void
expectSameCounts(const MissCounts &fast, const MissCounts &slow)
{
    for (uint32_t c = 0; c < numMissClasses; ++c) {
        EXPECT_EQ(fast.osI[c], slow.osI[c]) << "osI class " << c;
        EXPECT_EQ(fast.osD[c], slow.osD[c]) << "osD class " << c;
        EXPECT_EQ(fast.appI[c], slow.appI[c]) << "appI class " << c;
        EXPECT_EQ(fast.appD[c], slow.appD[c]) << "appD class " << c;
        EXPECT_EQ(fast.idleI[c], slow.idleI[c]) << "idleI class " << c;
        EXPECT_EQ(fast.idleD[c], slow.idleD[c]) << "idleD class " << c;
    }
    EXPECT_EQ(fast.osDispossameI, slow.osDispossameI);
    EXPECT_EQ(fast.osDispossameD, slow.osDispossameD);
}

void
expectSameAccount(const sim::CycleAccount &fast,
                  const sim::CycleAccount &slow)
{
    for (unsigned m = 0; m < 3; ++m) {
        EXPECT_EQ(fast.total[m], slow.total[m]) << "total mode " << m;
        EXPECT_EQ(fast.stall[m], slow.stall[m]) << "stall mode " << m;
    }
}

void
runBothAndCompare(workload::WorkloadKind kind)
{
    core::Experiment fast(smallConfig(kind, false));
    fast.run();
    core::Experiment slow(smallConfig(kind, true));
    slow.run();

    EXPECT_EQ(fast.machine().now(), slow.machine().now());
    EXPECT_EQ(fast.machine().memory().busTransactions(),
              slow.machine().memory().busTransactions());
    expectSameCounts(fast.misses(), slow.misses());
    expectSameAccount(fast.account(), slow.account());
    EXPECT_EQ(fast.elapsed(), slow.elapsed());
}

} // namespace

TEST(Determinism, PmakeFastMatchesReference)
{
    runBothAndCompare(workload::WorkloadKind::Pmake);
}

TEST(Determinism, MultpgmFastMatchesReference)
{
    runBothAndCompare(workload::WorkloadKind::Multpgm);
}

TEST(Determinism, OracleFastMatchesReference)
{
    runBothAndCompare(workload::WorkloadKind::Oracle);
}
