/**
 * @file
 * Golden-counters equivalence test for the event-driven simulation
 * fast paths.
 *
 * The cycle-skipping scheduler, the snoop-filter bit walks, and the
 * packed cache/monitor fast paths are pure optimizations: they must
 * not change a single simulated event. This test runs the same
 * experiment twice -- once through the fast paths and once with
 * MachineConfig::slowSim selecting the one-cycle-at-a-time reference
 * scheduler and full snoop walks -- and requires every observable
 * counter to be identical: bus transactions, per-class miss counts,
 * and the per-mode cycle accounting.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"

using namespace mpos;
using core::MissCounts;
using core::numMissClasses;

namespace
{

core::ExperimentConfig
smallConfig(workload::WorkloadKind kind, bool slow)
{
    core::ExperimentConfig cfg;
    cfg.kind = kind;
    cfg.warmupCycles = 200000;
    cfg.measureCycles = 1000000;
    cfg.machine.slowSim = slow;
    return cfg;
}

core::ExperimentConfig
matrixConfig(uint64_t seed, uint32_t num_cpus, bool slow)
{
    core::ExperimentConfig cfg =
        smallConfig(workload::WorkloadKind::Pmake, slow);
    // Shorter runs: the matrix multiplies this by seeds x CPU counts.
    cfg.warmupCycles = 100000;
    cfg.measureCycles = 400000;
    cfg.options.seed = seed;
    cfg.machine.numCpus = num_cpus;
    return cfg;
}

void
expectSameCounts(const MissCounts &fast, const MissCounts &slow)
{
    for (uint32_t c = 0; c < numMissClasses; ++c) {
        EXPECT_EQ(fast.osI[c], slow.osI[c]) << "osI class " << c;
        EXPECT_EQ(fast.osD[c], slow.osD[c]) << "osD class " << c;
        EXPECT_EQ(fast.appI[c], slow.appI[c]) << "appI class " << c;
        EXPECT_EQ(fast.appD[c], slow.appD[c]) << "appD class " << c;
        EXPECT_EQ(fast.idleI[c], slow.idleI[c]) << "idleI class " << c;
        EXPECT_EQ(fast.idleD[c], slow.idleD[c]) << "idleD class " << c;
    }
    EXPECT_EQ(fast.osDispossameI, slow.osDispossameI);
    EXPECT_EQ(fast.osDispossameD, slow.osDispossameD);
}

void
expectSameAccount(const sim::CycleAccount &fast,
                  const sim::CycleAccount &slow)
{
    for (unsigned m = 0; m < 3; ++m) {
        EXPECT_EQ(fast.total[m], slow.total[m]) << "total mode " << m;
        EXPECT_EQ(fast.stall[m], slow.stall[m]) << "stall mode " << m;
    }
}

void
runBothAndCompare(workload::WorkloadKind kind)
{
    core::Experiment fast(smallConfig(kind, false));
    fast.run();
    core::Experiment slow(smallConfig(kind, true));
    slow.run();

    EXPECT_EQ(fast.machine().now(), slow.machine().now());
    EXPECT_EQ(fast.machine().memory().busTransactions(),
              slow.machine().memory().busTransactions());
    expectSameCounts(fast.misses(), slow.misses());
    expectSameAccount(fast.account(), slow.account());
    EXPECT_EQ(fast.elapsed(), slow.elapsed());
}

} // namespace

TEST(Determinism, PmakeFastMatchesReference)
{
    runBothAndCompare(workload::WorkloadKind::Pmake);
}

TEST(Determinism, MultpgmFastMatchesReference)
{
    runBothAndCompare(workload::WorkloadKind::Multpgm);
}

TEST(Determinism, OracleFastMatchesReference)
{
    runBothAndCompare(workload::WorkloadKind::Oracle);
}

/**
 * Fast-vs-reference equivalence must hold for every machine shape and
 * every RNG stream, not just the default: sweep RNG seeds x CPU
 * counts, comparing the two schedulers at each point.
 */
TEST(Determinism, SeedAndCpuCountMatrix)
{
    for (uint64_t seed : {5u, 7u, 11u}) {
        for (uint32_t cpus : {1u, 2u, 4u}) {
            SCOPED_TRACE("seed " + std::to_string(seed) + " cpus " +
                         std::to_string(cpus));
            core::Experiment fast(matrixConfig(seed, cpus, false));
            fast.run();
            core::Experiment slow(matrixConfig(seed, cpus, true));
            slow.run();

            EXPECT_EQ(fast.machine().now(), slow.machine().now());
            EXPECT_EQ(fast.machine().memory().busTransactions(),
                      slow.machine().memory().busTransactions());
            expectSameCounts(fast.misses(), slow.misses());
            expectSameAccount(fast.account(), slow.account());
            EXPECT_EQ(fast.elapsed(), slow.elapsed());
        }
    }
}

/** Different seeds must actually change the simulated history (the
 *  matrix above would be vacuous if the seed were ignored). */
TEST(Determinism, SeedChangesTheSimulatedHistory)
{
    core::Experiment a(matrixConfig(5, 4, false));
    a.run();
    core::Experiment b(matrixConfig(11, 4, false));
    b.run();
    const bool differs =
        a.machine().memory().busTransactions() !=
            b.machine().memory().busTransactions() ||
        a.account().all() != b.account().all() ||
        a.misses().total() != b.misses().total();
    EXPECT_TRUE(differs);
}
