/** @file Forward-progress watchdog tests.
 *
 *  The contract under test: spin livelock (failed acquire polls and
 *  think time only) trips within the budget with a reproducible
 *  structured dump; anything that retires memory references or hands
 *  a lock over never trips; and the whole subsystem is absent -- a
 *  null pointer -- unless explicitly enabled.
 */

#include <gtest/gtest.h>

#include "kernel/kernel.hh"
#include "sim/machine.hh"
#include "util/error.hh"

using namespace mpos;
using namespace mpos::sim;
using mpos::util::ErrCode;
using mpos::util::SimError;

namespace
{

/**
 * Executor whose CPUs spin on a contended lock forever: think time
 * plus failed acquire polls, never a memory reference. The exact
 * shape of the pathology the watchdog exists to catch.
 */
struct SpinExecutor : Executor
{
    explicit SpinExecutor(Machine &machine) : m(machine) {}

    Machine &m;

    void
    refill(CpuId cpu) override
    {
        m.cpu(cpu).push(ScriptItem::think(30));
        m.cpu(cpu).push(ScriptItem::mark(MarkerOp::LockAcquire, 0, 1));
    }

    void
    marker(CpuId cpu, const ScriptItem &item) override
    {
        if (item.marker == MarkerOp::LockAcquire) {
            const Cycle cost = m.sync().access(
                cpu, uint32_t(item.addr), LockEvent::AcquireFail);
            m.charge(cpu, cost, true);
        }
    }

    void fault(CpuId, Addr, bool, bool) override {}
    void pollEvents(CpuId, Cycle) override {}
};

/** Executor that makes real progress: loads retire every chunk. */
struct ProgressExecutor : Executor
{
    explicit ProgressExecutor(Machine &machine) : m(machine) {}

    Machine &m;

    void
    refill(CpuId cpu) override
    {
        m.cpu(cpu).push(ScriptItem::load(0x500 + cpu * 64));
        m.cpu(cpu).push(ScriptItem::think(30));
    }

    void marker(CpuId, const ScriptItem &) override {}
    void fault(CpuId, Addr, bool, bool) override {}
    void pollEvents(CpuId, Cycle) override {}
};

/** Run a fresh 2-CPU spin-livelock machine and return the trip text. */
std::string
livelockDump(Cycle budget)
{
    MachineConfig cfg;
    cfg.numCpus = 2;
    cfg.watchdogCycles = budget;
    Machine m(cfg, 8);
    SpinExecutor ex(m);
    m.setExecutor(&ex);
    try {
        m.run(budget * 20);
    } catch (const SimError &e) {
        EXPECT_EQ(e.code(), ErrCode::WatchdogTrip);
        return e.what();
    }
    ADD_FAILURE() << "livelock did not trip the watchdog";
    return {};
}

} // namespace

TEST(Watchdog, PureSimLivelockTripsWithinBudget)
{
    MachineConfig cfg;
    cfg.numCpus = 2;
    cfg.watchdogCycles = 5000;
    Machine m(cfg, 8);
    ASSERT_NE(m.watchdog(), nullptr);
    SpinExecutor ex(m);
    m.setExecutor(&ex);

    try {
        m.run(100000);
        FAIL() << "livelock did not trip the watchdog";
    } catch (const SimError &e) {
        EXPECT_EQ(e.code(), ErrCode::WatchdogTrip);
        EXPECT_NE(std::string(e.what()).find("no forward progress"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("cpu0:"),
                  std::string::npos);
    }
    // Detected promptly: the budget plus scheduler slack, not the
    // full 100k-cycle run.
    EXPECT_LE(m.now(), 12000u);
}

TEST(Watchdog, SameLivelockSameDump)
{
    const std::string a = livelockDump(4000);
    const std::string b = livelockDump(4000);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b); // byte-identical, diagnostics are deterministic
}

TEST(Watchdog, ProgressSuppressesTrip)
{
    MachineConfig cfg;
    cfg.numCpus = 2;
    cfg.watchdogCycles = 2000;
    Machine m(cfg, 8);
    ProgressExecutor ex(m);
    m.setExecutor(&ex);
    EXPECT_NO_THROW(m.run(100000));
    EXPECT_EQ(m.now(), 100000u);
}

TEST(Watchdog, IdleKernelNeverTrips)
{
    // The idle loop fetches instructions, which is progress by
    // definition: an idle machine must be able to idle forever.
    MachineConfig mcfg;
    mcfg.numCpus = 2;
    mcfg.watchdogCycles = 20000;
    Machine m(mcfg, 128);
    kernel::KernelConfig kcfg;
    kcfg.layout.maxProcs = 16;
    kcfg.userPoolPages = 600;
    kernel::Kernel k(m, kcfg);
    EXPECT_NO_THROW(m.run(200000));
}

TEST(Watchdog, KernelDeadlockDumpHasLockTable)
{
    // Classic ABBA: cpu0 takes Memlock then wants Runqlk, cpu1 takes
    // Runqlk then wants Memlock. Both spin forever on AcquireFail.
    MachineConfig mcfg;
    mcfg.numCpus = 2;
    mcfg.watchdogCycles = 10000;
    Machine m(mcfg, 128);
    kernel::KernelConfig kcfg;
    kcfg.layout.maxProcs = 16;
    kcfg.userPoolPages = 600;
    kernel::Kernel k(m, kcfg);

    using kernel::KLock;
    m.cpu(0).push(ScriptItem::mark(MarkerOp::LockAcquire,
                                   uint64_t(KLock::Memlock)));
    m.cpu(0).push(ScriptItem::think(10));
    m.cpu(0).push(ScriptItem::mark(MarkerOp::LockAcquire,
                                   uint64_t(KLock::Runqlk)));
    m.cpu(1).push(ScriptItem::mark(MarkerOp::LockAcquire,
                                   uint64_t(KLock::Runqlk)));
    m.cpu(1).push(ScriptItem::think(10));
    m.cpu(1).push(ScriptItem::mark(MarkerOp::LockAcquire,
                                   uint64_t(KLock::Memlock)));

    try {
        m.run(500000);
        FAIL() << "ABBA deadlock did not trip the watchdog";
    } catch (const SimError &e) {
        EXPECT_EQ(e.code(), ErrCode::WatchdogTrip);
        const std::string text = e.what();
        // The kernel-installed diagnostic provider names the held
        // locks and their holders.
        EXPECT_NE(text.find("Memlock"), std::string::npos) << text;
        EXPECT_NE(text.find("Runqlk"), std::string::npos) << text;
        EXPECT_NE(text.find("locks:"), std::string::npos) << text;
    }
}

TEST(Watchdog, OffByDefault)
{
    MachineConfig cfg;
    Machine m(cfg, 8);
    EXPECT_EQ(m.watchdog(), nullptr);
    EXPECT_EQ(m.faults(), nullptr);
}

TEST(Watchdog, SyntheticTripFiresEvenWithProgress)
{
    MachineConfig cfg;
    cfg.numCpus = 2;
    cfg.watchdogCycles = 50000; // budget never exhausted in this run
    Machine m(cfg, 8);
    ProgressExecutor ex(m);
    m.setExecutor(&ex);
    m.watchdog()->forceTripAt(2000);
    try {
        m.run(40000);
        FAIL() << "synthetic trip did not fire";
    } catch (const SimError &e) {
        EXPECT_EQ(e.code(), ErrCode::WatchdogTrip);
        EXPECT_NE(std::string(e.what()).find("synthetic"),
                  std::string::npos);
    }
    EXPECT_GE(m.now(), 2000u);
    EXPECT_LE(m.now(), 6000u);
}
