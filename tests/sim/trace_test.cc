/** @file Trace exporter, event ring, and watchdog-ring unification.
 *
 *  The contracts under test: the EventRing keeps exactly the last
 *  `capacity` events in order; the binary trace round-trips through
 *  the JSONL converter with every line being valid JSON; ring mode
 *  writes only the final ring contents; the watchdog's diagnostic
 *  dump renders the tail of the *same* ring the tracer fills (one
 *  buffer, two consumers); the whole layer is a null pointer unless
 *  enabled; and a pinned configuration produces a byte-identical
 *  trace and JSONL against the committed golden files.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/experiment.hh"
#include "kernel/kernel.hh"
#include "sim/machine.hh"
#include "sim/trace/trace.hh"
#include "util/error.hh"
#include "util/json.hh"

using namespace mpos;
using namespace mpos::sim;
using namespace mpos::sim::trace;

namespace
{

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

uint64_t
lineCount(const std::string &text)
{
    uint64_t n = 0;
    for (char c : text)
        if (c == '\n')
            ++n;
    return n;
}

/** Run a small kernel-driven machine with the given trace config. */
void
runTraced(MachineConfig &mcfg, Cycle cycles)
{
    Machine m(mcfg, 128);
    kernel::KernelConfig kcfg;
    kcfg.layout.maxProcs = 16;
    kcfg.userPoolPages = 600;
    kernel::Kernel k(m, kcfg);
    m.run(cycles);
    ASSERT_NE(m.tracer(), nullptr);
    m.tracer()->finish();
}

/** Run a short traced Pmake experiment (real bus traffic). */
std::unique_ptr<core::Experiment>
runTracedWorkload(const std::string &trace_path, uint64_t ring_entries,
                  bool ring_mode)
{
    core::ExperimentConfig cfg;
    cfg.kind = workload::WorkloadKind::Pmake;
    cfg.warmupCycles = 20000;
    cfg.measureCycles = 60000;
    cfg.options.seed = 7;
    cfg.machine.trace = true;
    cfg.machine.traceFile = trace_path;
    cfg.machine.traceRingEntries = ring_entries;
    cfg.machine.traceRingMode = ring_mode;
    auto e = std::make_unique<core::Experiment>(cfg);
    e->run(); // finishes (and closes) the trace
    return e;
}

} // namespace

TEST(EventRing, KeepsLastCapacityEventsInOrder)
{
    EventRing ring(4);
    EXPECT_EQ(ring.capacity(), 4u);
    EXPECT_EQ(ring.size(), 0u);

    for (uint64_t i = 0; i < 10; ++i) {
        TraceEvent ev;
        ev.cycle = i;
        ring.push(ev);
    }
    EXPECT_EQ(ring.total(), 10u);
    EXPECT_EQ(ring.size(), 4u);
    // Oldest-first tail: cycles 6, 7, 8, 9.
    for (uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(ring.tail(i).cycle, 6 + i);
}

TEST(EventRing, PartiallyFilled)
{
    EventRing ring(8);
    TraceEvent ev;
    ev.cycle = 42;
    ring.push(ev);
    EXPECT_EQ(ring.total(), 1u);
    EXPECT_EQ(ring.size(), 1u);
    EXPECT_EQ(ring.tail(0).cycle, 42u);
}

TEST(Trace, OffByDefault)
{
    MachineConfig cfg;
    Machine m(cfg, 8);
    EXPECT_EQ(m.tracer(), nullptr);
    EXPECT_EQ(m.metrics(), nullptr);
    EXPECT_EQ(m.profiler(), nullptr);
}

TEST(Trace, StreamedTraceConvertsToValidJsonl)
{
    const std::string trace = tmpPath("stream.trace");
    const std::string jsonl = tmpPath("stream.jsonl");

    runTracedWorkload(trace, 4096, false);

    std::string err;
    ASSERT_TRUE(convertToJsonl(trace, jsonl, &err)) << err;

    const std::string text = slurp(jsonl);
    const uint64_t lines = lineCount(text);
    EXPECT_GT(lines, 100u); // a real run produces real traffic

    // Every line is a standalone valid JSON object.
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        size_t at = 0;
        std::string why;
        EXPECT_TRUE(util::jsonValidate(line, &at, &why))
            << line << "\n  at byte " << at << ": " << why;
        EXPECT_EQ(line.front(), '{');
    }
}

TEST(Trace, StreamingWritesEveryEvent)
{
    const std::string trace = tmpPath("count.trace");
    const std::string jsonl = tmpPath("count.jsonl");

    // Ring far smaller than the event count of a real workload.
    auto e = runTracedWorkload(trace, 64, false);
    const uint64_t total = e->machine().tracer()->totalEvents();
    ASSERT_GT(total, 64u);

    std::string err;
    ASSERT_TRUE(convertToJsonl(trace, jsonl, &err)) << err;
    // Streaming mode: the file holds all events, not just the ring.
    EXPECT_EQ(lineCount(slurp(jsonl)), total);
}

TEST(Trace, RingModeWritesOnlyFinalRingContents)
{
    const std::string trace = tmpPath("ring.trace");
    const std::string jsonl = tmpPath("ring.jsonl");

    auto e = runTracedWorkload(trace, 64, true);
    const Tracer &tr = *e->machine().tracer();
    const uint64_t total = tr.totalEvents();
    const Cycle lastRingCycle = tr.ring().tail(tr.ring().size() - 1).cycle;
    ASSERT_GT(total, 64u);

    std::string err;
    ASSERT_TRUE(convertToJsonl(trace, jsonl, &err)) << err;
    const std::string text = slurp(jsonl);
    EXPECT_EQ(lineCount(text), 64u);
    // The last emitted event is the last ring entry.
    char want[64];
    std::snprintf(want, sizeof want, "\"cycle\":%llu",
                  (unsigned long long)lastRingCycle);
    EXPECT_NE(text.rfind(want), std::string::npos);
}

TEST(Trace, IdenticalRunsProduceIdenticalTraces)
{
    const std::string a = tmpPath("det_a.trace");
    const std::string b = tmpPath("det_b.trace");

    for (const std::string &path : {a, b}) {
        MachineConfig cfg;
        cfg.numCpus = 2;
        cfg.trace = true;
        cfg.traceFile = path;
        cfg.traceRingEntries = 256;
        runTraced(cfg, 80000);
    }
    EXPECT_EQ(slurp(a), slurp(b)); // byte-identical
}

TEST(Trace, ConverterRejectsGarbage)
{
    const std::string bad = tmpPath("garbage.trace");
    std::ofstream(bad, std::ios::binary) << "this is not a trace";
    std::string err;
    EXPECT_FALSE(convertToJsonl(bad, tmpPath("garbage.jsonl"), &err));
    EXPECT_FALSE(err.empty());
}

// ------------------------------------------------------------------ //
// Watchdog / trace ring unification                                  //
// ------------------------------------------------------------------ //

TEST(Trace, WatchdogAloneGetsRingOnlyTracer)
{
    // The watchdog's event history comes from the shared ring, so
    // enabling the watchdog materializes a small file-less tracer.
    MachineConfig cfg;
    cfg.numCpus = 2;
    cfg.watchdogCycles = 5000;
    Machine m(cfg, 8);
    ASSERT_NE(m.watchdog(), nullptr);
    ASSERT_NE(m.tracer(), nullptr);
    EXPECT_EQ(m.tracer()->ring().capacity(), 32u);
}

TEST(Trace, WatchdogDumpRendersSharedRingTail)
{
    MachineConfig mcfg;
    mcfg.numCpus = 2;
    mcfg.watchdogCycles = 200000;
    mcfg.trace = true; // one ring, two consumers
    mcfg.traceRingEntries = 4096;
    Machine m(mcfg, 128);
    kernel::KernelConfig kcfg;
    kcfg.layout.maxProcs = 16;
    kcfg.userPoolPages = 600;
    kernel::Kernel k(m, kcfg);

    m.watchdog()->forceTripAt(50000);
    std::string dump;
    try {
        m.run(100000);
        FAIL() << "synthetic trip did not fire";
    } catch (const util::SimError &e) {
        EXPECT_EQ(e.code(), util::ErrCode::WatchdogTrip);
        dump = e.what();
    }

    ASSERT_NE(m.tracer(), nullptr);
    const EventRing &ring = m.tracer()->ring();
    ASSERT_GT(ring.size(), 0u);
    EXPECT_NE(dump.find("monitor events:"), std::string::npos) << dump;

    // The dump's event tail is rendered from the tracer's own ring:
    // the last bus event in the ring must appear in the dump text
    // with the exact cycle/op/line rendering.
    bool checked = false;
    for (uint64_t i = ring.size(); i-- > 0;) {
        const TraceEvent &ev = ring.tail(i);
        if (ev.kind != TraceEventKind::Bus)
            continue;
        char want[128];
        std::snprintf(want, sizeof want,
                      "%llu cpu%u bus %s %c line=0x%llx",
                      (unsigned long long)ev.cycle, ev.cpu,
                      busOpName(BusOp(ev.a)),
                      CacheKind(ev.b) == CacheKind::Instr ? 'I' : 'D',
                      (unsigned long long)ev.addr);
        EXPECT_NE(dump.find(want), std::string::npos)
            << "dump does not render ring tail event: " << want
            << "\n" << dump;
        checked = true;
        break;
    }
    EXPECT_TRUE(checked) << "no bus event in the ring to check";
}

// ------------------------------------------------------------------ //
// Golden trace: pinned config, byte-identical output                 //
// ------------------------------------------------------------------ //

#ifdef MPOS_GOLDEN_DIR
TEST(Trace, GoldenByteIdentical)
{
    // Pinned smoke configuration; ring mode keeps the committed
    // corpus small. Regenerate intentionally with
    // tests/golden/update.sh (which sets MPOS_UPDATE_GOLDEN).
    const std::string golden_trace =
        std::string(MPOS_GOLDEN_DIR) + "/trace_smoke.trace";
    const std::string golden_jsonl =
        std::string(MPOS_GOLDEN_DIR) + "/trace_smoke.jsonl";
    const std::string fresh_trace = tmpPath("golden_fresh.trace");
    const std::string fresh_jsonl = tmpPath("golden_fresh.jsonl");

    core::ExperimentConfig cfg;
    cfg.kind = workload::WorkloadKind::Pmake;
    cfg.warmupCycles = 50000;
    cfg.measureCycles = 100000;
    cfg.options.seed = 7;
    cfg.machine.trace = true;
    cfg.machine.traceFile = fresh_trace;
    cfg.machine.traceRingEntries = 256;
    cfg.machine.traceRingMode = true;
    core::Experiment exp(cfg);
    exp.run();

    std::string err;
    ASSERT_TRUE(convertToJsonl(fresh_trace, fresh_jsonl, &err)) << err;

    if (std::getenv("MPOS_UPDATE_GOLDEN")) {
        std::ofstream(golden_trace, std::ios::binary)
            << slurp(fresh_trace);
        std::ofstream(golden_jsonl, std::ios::binary)
            << slurp(fresh_jsonl);
        GTEST_LOG_(INFO) << "golden trace updated in "
                         << MPOS_GOLDEN_DIR;
        return;
    }

    // A missing golden is a failure, not a skip (check.sh policy).
    ASSERT_TRUE(std::ifstream(golden_trace).good())
        << "no committed golden trace; run tests/golden/update.sh";
    EXPECT_EQ(slurp(fresh_trace), slurp(golden_trace))
        << "binary trace differs from the committed golden";
    EXPECT_EQ(slurp(fresh_jsonl), slurp(golden_jsonl))
        << "JSONL conversion differs from the committed golden";
}
#endif
