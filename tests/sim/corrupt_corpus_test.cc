/** @file Committed corrupt-snapshot corpus tests.
 *
 *  tests/golden/corrupt/ holds four deliberately damaged MPOSSNAP
 *  images (regenerate with `mpos_fuzz --emit-corrupt-corpus`):
 *  truncated mid-image, trailing checksum flipped, a section length
 *  claiming more bytes than the image holds (with the outer checksum
 *  recomputed so the framing validator, not the checksum, must catch
 *  it), and an unknown format version (likewise re-checksummed).
 *  Every one must be rejected with a typed
 *  SimError(SnapshotCorrupt) -- never a crash -- and the warm-start
 *  cache must treat such a file as a plain miss and fall back to a
 *  cold warmup.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/warmcache.hh"
#include "sim/snapshot/container.hh"
#include "util/error.hh"

using namespace mpos;
using namespace mpos::sim;

namespace
{

std::vector<uint8_t>
corpusImage(const char *name)
{
    const std::string path =
        std::string(MPOS_GOLDEN_DIR) + "/corrupt/" + name;
    std::vector<uint8_t> bytes;
    if (!snapshot::readFile(path, bytes))
        ADD_FAILURE() << "missing corpus file " << path;
    return bytes;
}

void
expectRejected(const char *name)
{
    const std::vector<uint8_t> img = corpusImage(name);
    ASSERT_FALSE(img.empty());
    try {
        snapshot::parse(img);
        FAIL() << name << " was accepted";
    } catch (const util::SimError &e) {
        EXPECT_EQ(e.code(), util::ErrCode::SnapshotCorrupt)
            << name << ": " << e.what();
    }
}

} // namespace

TEST(CorruptCorpus, EveryCommittedImageIsRejectedWithATypedError)
{
    expectRejected("truncated.snap");
    expectRejected("flipped_crc.snap");
    expectRejected("oversize_len.snap");
    expectRejected("bad_version.snap");
}

TEST(CorruptCorpus, WarmCacheTreatsACorruptDiskFileAsAMiss)
{
    const std::string dir =
        testing::TempDir() + "/corrupt_warmcache";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    // Plant every corpus image under the exact name the cache would
    // look up; a poisoned-by-corruption cache entry must read as a
    // miss (cold warmup), never an error or a crash.
    const char *names[] = {"truncated.snap", "flipped_crc.snap",
                           "oversize_len.snap", "bad_version.snap"};
    core::WarmStartCache cache(dir);
    uint64_t key = 0x1000;
    for (const char *name : names) {
        const std::vector<uint8_t> img = corpusImage(name);
        ASSERT_FALSE(img.empty());
        char leaf[32];
        std::snprintf(leaf, sizeof leaf, "/warm-%016llx",
                      (unsigned long long)key);
        const std::string path = dir + leaf;
        ASSERT_TRUE(snapshot::writeFileAtomic(path, img));
        EXPECT_EQ(cache.lookup(key), nullptr) << name;
        ++key;
    }
    EXPECT_EQ(cache.stats().misses, 4u);
    EXPECT_EQ(cache.stats().hits, 0u);
    std::filesystem::remove_all(dir);
}
