/** @file Committed corrupt-snapshot corpus tests.
 *
 *  tests/golden/corrupt/ holds five deliberately damaged MPOSSNAP
 *  images (regenerate with `mpos_fuzz --emit-corrupt-corpus`):
 *  truncated mid-image, trailing checksum flipped, a section length
 *  claiming more bytes than the image holds (with the outer checksum
 *  recomputed so the framing validator, not the checksum, must catch
 *  it), an unknown format version (likewise re-checksummed), and a
 *  well-formed container holding a garbage Machine section, which
 *  sails through the framing and must be stopped by the state
 *  decoders instead. Every one must be rejected with a typed
 *  SimError -- never a crash -- and the warm-start cache must treat
 *  such a file as a plain miss and fall back to a cold warmup.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/warmcache.hh"
#include "sim/machine.hh"
#include "sim/snapshot/container.hh"
#include "util/binio.hh"
#include "util/error.hh"

using namespace mpos;
using namespace mpos::sim;

namespace
{

std::vector<uint8_t>
corpusImage(const char *name)
{
    const std::string path =
        std::string(MPOS_GOLDEN_DIR) + "/corrupt/" + name;
    std::vector<uint8_t> bytes;
    if (!snapshot::readFile(path, bytes))
        ADD_FAILURE() << "missing corpus file " << path;
    return bytes;
}

void
expectRejected(const char *name)
{
    const std::vector<uint8_t> img = corpusImage(name);
    ASSERT_FALSE(img.empty());
    try {
        snapshot::parse(img);
        FAIL() << name << " was accepted";
    } catch (const util::SimError &e) {
        EXPECT_EQ(e.code(), util::ErrCode::SnapshotCorrupt)
            << name << ": " << e.what();
    }
}

} // namespace

TEST(CorruptCorpus, EveryCommittedImageIsRejectedWithATypedError)
{
    expectRejected("truncated.snap");
    expectRejected("flipped_crc.snap");
    expectRejected("oversize_len.snap");
    expectRejected("bad_version.snap");
}

TEST(CorruptCorpus, GarbageMachineSectionIsRejectedByStateDecoders)
{
    // The container framing of this image is intact -- parse must
    // accept it -- but its Machine section is a 256-byte pattern, so
    // the deep state decoders have to reject it through the typed
    // error channel.
    const std::vector<uint8_t> img =
        corpusImage("garbage_section.snap");
    ASSERT_FALSE(img.empty());
    const snapshot::Parsed parsed = snapshot::parse(img);
    MachineConfig cfg;
    cfg.numCpus = 2;
    Machine m(cfg, 8);
    util::ByteReader r(parsed.section(snapshot::Section::Machine));
    EXPECT_THROW(m.restoreState(r), util::SimError);
}

TEST(CorruptCorpus, WarmCacheTreatsACorruptDiskFileAsAMiss)
{
    const std::string dir =
        testing::TempDir() + "/corrupt_warmcache";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    // Plant every corpus image under the exact name the cache would
    // look up; a poisoned-by-corruption cache entry must read as a
    // miss (cold warmup), never an error or a crash.
    // garbage_section.snap parses but carries a foreign config hash,
    // so the cache must also read it as a miss.
    const char *names[] = {"truncated.snap", "flipped_crc.snap",
                           "oversize_len.snap", "bad_version.snap",
                           "garbage_section.snap"};
    core::WarmStartCache cache(dir);
    uint64_t key = 0x1000;
    for (const char *name : names) {
        const std::vector<uint8_t> img = corpusImage(name);
        ASSERT_FALSE(img.empty());
        char leaf[32];
        std::snprintf(leaf, sizeof leaf, "/warm-%016llx",
                      (unsigned long long)key);
        const std::string path = dir + leaf;
        ASSERT_TRUE(snapshot::writeFileAtomic(path, img));
        EXPECT_EQ(cache.lookup(key), nullptr) << name;
        ++key;
    }
    EXPECT_EQ(cache.stats().misses, 5u);
    EXPECT_EQ(cache.stats().hits, 0u);
    std::filesystem::remove_all(dir);
}
