/**
 * @file
 * Unit tests for the Monitor event hub: observer attach/detach and
 * listening() bookkeeping, fan-out of every event kind to multiple
 * observers in attach order, and the always-on transaction counters
 * that advance with or without a record being built.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/monitor.hh"

using namespace mpos::sim;

namespace
{

/** Observer that logs every callback into a shared trace. */
class TraceObserver : public MonitorObserver
{
  public:
    TraceObserver(std::string tag, std::vector<std::string> &out)
        : name(std::move(tag)), trace(out)
    {
    }

    void
    busTransaction(const BusRecord &rec) override
    {
        trace.push_back(name + ":bus@" + std::to_string(rec.cycle));
    }

    void
    evict(CpuId cpu, CacheKind, Addr line, const MonitorContext &)
        override
    {
        trace.push_back(name + ":evict" + std::to_string(cpu) + "@" +
                        std::to_string(line));
    }

    void
    invalSharing(CpuId cpu, CacheKind, Addr) override
    {
        trace.push_back(name + ":inval" + std::to_string(cpu));
    }

    void
    invalPageRealloc(CpuId cpu, Addr) override
    {
        trace.push_back(name + ":realloc" + std::to_string(cpu));
    }

    void
    flushPage(CpuId cpu, Addr page, uint32_t bytes) override
    {
        trace.push_back(name + ":flush" + std::to_string(cpu) + "@" +
                        std::to_string(page) + "+" +
                        std::to_string(bytes));
    }

    void
    osEnter(Cycle, CpuId cpu, OsOp) override
    {
        trace.push_back(name + ":osEnter" + std::to_string(cpu));
    }

    void
    osExit(Cycle, CpuId cpu, OsOp) override
    {
        trace.push_back(name + ":osExit" + std::to_string(cpu));
    }

    void
    contextSwitch(Cycle, CpuId cpu, Pid from, Pid to) override
    {
        trace.push_back(name + ":ctx" + std::to_string(cpu) + ":" +
                        std::to_string(from) + ">" +
                        std::to_string(to));
    }

  private:
    std::string name;
    std::vector<std::string> &trace;
};

BusRecord
record(Cycle cycle, ExecMode mode)
{
    BusRecord r;
    r.cycle = cycle;
    r.cpu = 0;
    r.lineAddr = 0x40;
    r.op = BusOp::Read;
    r.ctx.mode = mode;
    r.ctx.op = mode == ExecMode::User ? OsOp::None : OsOp::IoSyscall;
    r.ctx.pid = 0;
    return r;
}

} // namespace

TEST(Monitor, ListeningTracksAttachDetach)
{
    Monitor mon;
    std::vector<std::string> trace;
    TraceObserver a("a", trace), b("b", trace);

    EXPECT_FALSE(mon.listening());
    mon.attach(&a);
    EXPECT_TRUE(mon.listening());
    mon.attach(&b);
    mon.detach(&a);
    EXPECT_TRUE(mon.listening());
    mon.detach(&b);
    EXPECT_FALSE(mon.listening());
}

TEST(Monitor, DetachStopsDelivery)
{
    Monitor mon;
    std::vector<std::string> trace;
    TraceObserver a("a", trace), b("b", trace);
    mon.attach(&a);
    mon.attach(&b);

    mon.busTransaction(record(10, ExecMode::User));
    EXPECT_EQ(trace.size(), 2u);

    mon.detach(&a);
    mon.busTransaction(record(20, ExecMode::User));
    ASSERT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace.back(), "b:bus@20");
}

TEST(Monitor, FanOutInAttachOrderForEveryEventKind)
{
    Monitor mon;
    std::vector<std::string> trace;
    TraceObserver a("a", trace), b("b", trace);
    mon.attach(&a);
    mon.attach(&b);

    MonitorContext ctx;
    mon.busTransaction(record(5, ExecMode::Kernel));
    mon.evict(1, CacheKind::Data, 0x80, ctx);
    mon.invalSharing(2, CacheKind::Data, 0x90);
    mon.invalPageRealloc(3, 0xa0);
    mon.flushPage(1, 0x1000, 4096);
    mon.osEnter(100, 0, OsOp::IoSyscall);
    mon.osExit(200, 0, OsOp::IoSyscall);
    mon.contextSwitch(300, 2, 1, 4);

    const std::vector<std::string> expected = {
        "a:bus@5",        "b:bus@5",
        "a:evict1@128",   "b:evict1@128",
        "a:inval2",       "b:inval2",
        "a:realloc3",     "b:realloc3",
        "a:flush1@4096+4096", "b:flush1@4096+4096",
        "a:osEnter0",     "b:osEnter0",
        "a:osExit0",      "b:osExit0",
        "a:ctx2:1>4",     "b:ctx2:1>4",
    };
    EXPECT_EQ(trace, expected);
}

TEST(Monitor, TransactionCountersAlwaysAdvance)
{
    Monitor mon;
    // No observer attached: countTransaction is the warmup fast path.
    mon.countTransaction(ExecMode::User);
    mon.countTransaction(ExecMode::Kernel);
    mon.countTransaction(ExecMode::Idle);
    EXPECT_EQ(mon.transactions(), 3u);
    EXPECT_EQ(mon.osTransactions(), 2u); // Kernel + Idle are "OS"

    // Full records advance the same counters.
    mon.busTransaction(record(1, ExecMode::User));
    mon.busTransaction(record(2, ExecMode::Kernel));
    EXPECT_EQ(mon.transactions(), 5u);
    EXPECT_EQ(mon.osTransactions(), 3u);
}

TEST(Monitor, NonBusEventsDoNotCount)
{
    Monitor mon;
    MonitorContext ctx;
    mon.evict(0, CacheKind::Data, 0x40, ctx);
    mon.osEnter(10, 0, OsOp::Interrupt);
    mon.osExit(20, 0, OsOp::Interrupt);
    EXPECT_EQ(mon.transactions(), 0u);
    EXPECT_EQ(mon.osTransactions(), 0u);
}
