/** @file Tests of the CPU script engine and cycle accounting. */

#include <deque>
#include <gtest/gtest.h>

#include "sim/machine.hh"

using namespace mpos::sim;

namespace
{

/** Executor that replays a fixed schedule and records callbacks. */
struct StubExecutor : Executor
{
    explicit StubExecutor(Machine &machine) : m(machine) {}

    Machine &m;
    std::deque<ScriptItem> feed; ///< Items handed out one per refill.
    uint64_t refills = 0;
    uint64_t padCycles = 0;    ///< Filler cycles across all CPUs.
    uint64_t padPerCpu[16] = {}; ///< Filler cycles per CPU.
    uint64_t markers = 0;
    uint64_t faults = 0;
    uint64_t polls = 0;
    bool idleWhenEmpty = true;

    void
    refill(CpuId cpu) override
    {
        ++refills;
        if (!feed.empty()) {
            m.cpu(cpu).push(feed.front());
            feed.pop_front();
            return;
        }
        // Keep the machine fed with cheap idle work.
        padCycles += 16;
        padPerCpu[cpu] += 16;
        m.cpu(cpu).push(ScriptItem::think(16));
    }

    void
    marker(CpuId, const ScriptItem &) override
    {
        ++markers;
    }

    void
    fault(CpuId cpu, Addr vaddr, bool, bool) override
    {
        ++faults;
        // Map 1:1 and let the reference retry.
        m.cpu(cpu).tlb.insert(m.cpu(cpu).ctx.pid, vaddr / 4096,
                              vaddr / 4096, true);
    }

    void pollEvents(CpuId, Cycle) override { ++polls; }
};

struct MachineTest : ::testing::Test
{
    MachineTest() : m(cfg, 8), ex(m) { m.setExecutor(&ex); }

    MachineConfig cfg;
    Machine m;
    StubExecutor ex;
};

} // namespace

TEST_F(MachineTest, ThinkAdvancesTime)
{
    m.cpu(0).push(ScriptItem::think(100));
    m.run(10);
    EXPECT_GE(m.cpu(0).busyUntil, 100u);
    EXPECT_EQ(m.now(), 10u);
}

TEST_F(MachineTest, IFetchChargesExecutionPlusMiss)
{
    m.cpu(0).ctx.mode = ExecMode::User;
    m.cpu(0).push(ScriptItem::ifetch(0x1000));
    m.run(2);
    const auto &acct = m.cpu(0).account;
    // 4 cycles execution + 35 miss stall in User mode.
    EXPECT_EQ(acct.total[unsigned(ExecMode::User)], 39u);
    EXPECT_EQ(acct.stall[unsigned(ExecMode::User)], 35u);
}

TEST_F(MachineTest, DataHitCostsOneCycle)
{
    m.cpu(0).ctx.mode = ExecMode::Kernel;
    m.cpu(0).push(ScriptItem::load(0x500));
    m.cpu(0).push(ScriptItem::load(0x500));
    m.run(40);
    const auto &acct = m.cpu(0).account;
    // 1+35 for the miss, then 1 for the hit (minus refill filler).
    EXPECT_EQ(acct.total[unsigned(ExecMode::Kernel)] -
                  ex.padPerCpu[0],
              37u);
}

TEST_F(MachineTest, VirtualRefFaultsOnceThenRetries)
{
    m.cpu(0).ctx.pid = 3;
    m.cpu(0).ctx.mode = ExecMode::User;
    m.cpu(0).push(ScriptItem::load(0x12345, AddrSpace::Virtual));
    m.run(50);
    EXPECT_EQ(ex.faults, 1u);
    EXPECT_EQ(m.cpu(0).tlb.hits, 1u);   // the retry
    EXPECT_EQ(m.cpu(0).tlb.misses, 1u); // the fault
}

TEST_F(MachineTest, WriteToReadOnlyPageFaults)
{
    m.cpu(0).ctx.pid = 3;
    m.cpu(0).tlb.insert(3, 0x12, 0x12, false); // read-only
    m.cpu(0).push(ScriptItem::store(0x12000, AddrSpace::Virtual));
    m.run(50);
    EXPECT_EQ(ex.faults, 1u);
}

TEST_F(MachineTest, MarkersAreFreeAndDispatched)
{
    m.cpu(0).push(ScriptItem::mark(MarkerOp::RoutineEnter, 5));
    m.cpu(0).push(ScriptItem::mark(MarkerOp::PathDone));
    m.cpu(0).push(ScriptItem::think(4));
    m.run(3);
    EXPECT_EQ(ex.markers, 2u);
    EXPECT_EQ(m.cpu(0).account.all(), 4u);
}

TEST_F(MachineTest, RefillCalledWhenDry)
{
    m.run(64);
    EXPECT_GT(ex.refills, 0u);
}

TEST_F(MachineTest, PollHonorsDisableAndKernelMode)
{
    m.cpu(0).ctx.mode = ExecMode::Kernel;
    m.cpu(1).intrDisable = 1;
    m.run(600);
    // CPUs 2 and 3 poll; 0 (kernel) and 1 (disabled) never do.
    EXPECT_GT(ex.polls, 0u);
    const uint64_t polls_k = ex.polls;
    m.cpu(0).ctx.mode = ExecMode::User;
    m.cpu(1).intrDisable = 0;
    m.run(600);
    EXPECT_GT(ex.polls, polls_k);
}

TEST_F(MachineTest, UncachedItemsReachTheBus)
{
    m.cpu(0).push(ScriptItem::uncachedStore(0x40000000));
    m.run(2);
    EXPECT_EQ(m.monitor().transactions(), 1u);
}

TEST_F(MachineTest, PrefetchHidesStall)
{
    ScriptItem it = ScriptItem::load(0x3000);
    it.kind = ItemKind::PrefetchLoad;
    m.cpu(0).push(it);
    m.run(2);
    // The fill happened (bus transaction) but only 1 cycle charged.
    EXPECT_EQ(m.memory().busTransactions(), 1u);
    EXPECT_EQ(m.cpu(0).account.all() - ex.padPerCpu[0], 1u);
    EXPECT_TRUE(m.memory().caches(0).l2d.contains(0x3000));
}

TEST_F(MachineTest, BypassAvoidsInstallation)
{
    ScriptItem it = ScriptItem::store(0x3000);
    it.kind = ItemKind::BypassStore;
    m.cpu(0).push(it);
    m.run(2);
    EXPECT_EQ(m.memory().busTransactions(), 1u);
    EXPECT_FALSE(m.memory().caches(0).l2d.contains(0x3000));
}

TEST_F(MachineTest, PushFrontSeqRunsBeforeQueued)
{
    m.cpu(0).push(ScriptItem::think(7));
    std::vector<ScriptItem> first = {ScriptItem::think(1),
                                     ScriptItem::think(2)};
    m.cpu(0).pushFrontSeq(first);
    // After 1 cycle of run, the front item (think 1) executed first:
    m.run(1);
    EXPECT_EQ(m.cpu(0).busyUntil, 1u);
}

TEST_F(MachineTest, TotalAccountSumsCpus)
{
    m.cpu(0).push(ScriptItem::think(10));
    m.cpu(1).push(ScriptItem::think(20));
    m.run(1);
    EXPECT_GE(m.totalAccount().all(), 30u);
}

TEST_F(MachineTest, ChargeHelperAttributesToMode)
{
    m.cpu(2).ctx.mode = ExecMode::Kernel;
    m.charge(2, 123, true);
    EXPECT_EQ(m.cpu(2).account.stall[unsigned(ExecMode::Kernel)],
              123u);
}
