/** @file Unit and property tests for the set-associative cache model. */

#include <gtest/gtest.h>

#include "sim/cache.hh"
#include "util/rng.hh"

using mpos::sim::Cache;
using mpos::sim::Victim;

TEST(Cache, MissThenHit)
{
    Cache c("t", 1024, 1, 16);
    EXPECT_FALSE(c.touch(0x100));
    c.fill(0x100);
    EXPECT_TRUE(c.touch(0x100));
    EXPECT_TRUE(c.contains(0x10f)); // same line
    EXPECT_FALSE(c.contains(0x110)); // next line
}

TEST(Cache, DirectMappedConflict)
{
    Cache c("t", 1024, 1, 16); // 64 sets
    c.fill(0x0);
    const Victim v = c.fill(0x400); // same set (1024 apart)
    EXPECT_TRUE(v.valid);
    EXPECT_EQ(v.lineAddr, 0x0u);
    EXPECT_FALSE(c.contains(0x0));
    EXPECT_TRUE(c.contains(0x400));
}

TEST(Cache, TwoWayAvoidsConflict)
{
    Cache c("t", 2048, 2, 16); // same 64 sets, 2 ways
    c.fill(0x0);
    const Victim v = c.fill(0x400);
    EXPECT_FALSE(v.valid);
    EXPECT_TRUE(c.contains(0x0));
    EXPECT_TRUE(c.contains(0x400));
}

TEST(Cache, LruEviction)
{
    Cache c("t", 2048, 2, 16);
    c.fill(0x0);
    c.fill(0x400);
    c.touch(0x0); // 0x400 becomes LRU
    const Victim v = c.fill(0x800);
    EXPECT_TRUE(v.valid);
    EXPECT_EQ(v.lineAddr, 0x400u);
}

TEST(Cache, RefillExistingLineIsSilent)
{
    Cache c("t", 1024, 1, 16);
    c.fill(0x100);
    const Victim v = c.fill(0x100);
    EXPECT_FALSE(v.valid);
}

TEST(Cache, DirtyTracking)
{
    Cache c("t", 1024, 1, 16);
    c.fill(0x100);
    EXPECT_FALSE(c.isDirty(0x100));
    EXPECT_TRUE(c.markDirty(0x100));
    EXPECT_TRUE(c.isDirty(0x100));
    EXPECT_FALSE(c.markDirty(0x999999)); // absent
    const Victim v = c.fill(0x500); // conflicting set
    EXPECT_TRUE(v.valid);
    EXPECT_TRUE(v.dirty);
}

TEST(Cache, Invalidate)
{
    Cache c("t", 1024, 1, 16);
    c.fill(0x100);
    EXPECT_TRUE(c.invalidate(0x100));
    EXPECT_FALSE(c.contains(0x100));
    EXPECT_FALSE(c.invalidate(0x100));
}

TEST(Cache, InvalidateRangeCallsBack)
{
    Cache c("t", 16384, 1, 16); // 1024 sets: the fills don't conflict
    c.fill(0x1000);
    c.fill(0x1010);
    c.fill(0x2000);
    int flushed = 0;
    c.invalidateRange(0x1000, 0x1100,
                      [&](mpos::sim::Addr) { ++flushed; });
    EXPECT_EQ(flushed, 2);
    EXPECT_FALSE(c.contains(0x1000));
    EXPECT_TRUE(c.contains(0x2000));
}

TEST(Cache, ResetEmptiesEverything)
{
    Cache c("t", 1024, 1, 16);
    c.fill(0x0);
    c.fill(0x10);
    EXPECT_EQ(c.residentLines(), 2u);
    c.reset();
    EXPECT_EQ(c.residentLines(), 0u);
}

TEST(Cache, CapacityGeometry)
{
    Cache c("t", 64 * 1024, 1, 16);
    EXPECT_EQ(c.sets(), 4096u);
    EXPECT_EQ(c.capacityBytes(), 64u * 1024);
    Cache c2("t2", 64 * 1024, 4, 16);
    EXPECT_EQ(c2.sets(), 1024u);
}

/** Property sweep: capacity is respected for any geometry. */
class CacheGeometry
    : public ::testing::TestWithParam<std::pair<uint64_t, uint32_t>>
{
};

TEST_P(CacheGeometry, NeverExceedsCapacityAndKeepsMRU)
{
    const auto [bytes, assoc] = GetParam();
    Cache c("t", bytes, assoc, 16);
    mpos::util::Rng rng(5);
    const uint64_t lines = bytes / 16;
    for (int i = 0; i < 20000; ++i) {
        const mpos::sim::Addr a = rng.below(lines * 4) * 16;
        if (!c.touch(a))
            c.fill(a);
        // The most recently used line must always be resident.
        EXPECT_TRUE(c.contains(a));
        EXPECT_LE(c.residentLines(), lines);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(std::make_pair(uint64_t(1024), 1u),
                      std::make_pair(uint64_t(4096), 2u),
                      std::make_pair(uint64_t(65536), 1u),
                      std::make_pair(uint64_t(65536), 4u),
                      std::make_pair(uint64_t(262144), 1u),
                      std::make_pair(uint64_t(8192), 8u)));

/** A fully-warm direct-mapped cache holds exactly its line count. */
TEST(Cache, FullWarmup)
{
    Cache c("t", 1024, 1, 16);
    for (mpos::sim::Addr a = 0; a < 1024; a += 16)
        c.fill(a);
    EXPECT_EQ(c.residentLines(), 64u);
    for (mpos::sim::Addr a = 0; a < 1024; a += 16)
        EXPECT_TRUE(c.touch(a));
}
