/**
 * @file
 * Unit tests for the runtime invariant checker.
 *
 * The checker only earns its keep if it actually fires on broken
 * state, so these tests run it in recording mode (no abort) and feed
 * it deliberately malformed events and hand-corrupted coherence state,
 * asserting each invariant trips. A clean experiment run with checking
 * enabled closes the loop: plenty of checks performed, zero
 * violations, and a null checker when the feature is off.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "sim/machine.hh"

using namespace mpos;
using sim::Addr;
using sim::BusOp;
using sim::BusRecord;
using sim::CacheKind;
using sim::Checker;
using sim::Coh;
using sim::CpuId;
using sim::ExecMode;
using sim::MachineConfig;
using sim::MonitorContext;
using sim::OsOp;
using sim::TlbEntry;

namespace
{

MachineConfig
tinyConfig()
{
    MachineConfig cfg;
    cfg.numCpus = 2;
    cfg.icacheBytes = 1024;
    cfg.l1dBytes = 512;
    cfg.l2dBytes = 1024;
    cfg.memBytes = 64 * 1024;
    cfg.tlbEntries = 8;
    cfg.check = true;
    return cfg;
}

/** A machine whose checker records instead of aborting. */
struct Fixture
{
    Fixture() : m(tinyConfig())
    {
        chk = m.checker();
        EXPECT_NE(chk, nullptr);
        chk->setAbortOnViolation(false);
    }

    /** Number of recorded violations mentioning needle. */
    size_t
    mentions(const char *needle) const
    {
        size_t n = 0;
        for (const auto &v : chk->violations()) {
            if (v.find(needle) != std::string::npos)
                ++n;
        }
        return n;
    }

    sim::Machine m;
    Checker *chk = nullptr;
};

MonitorContext
userCtx()
{
    MonitorContext ctx;
    ctx.mode = ExecMode::User;
    ctx.op = OsOp::None;
    ctx.pid = 0;
    return ctx;
}

BusRecord
rec(sim::Cycle cycle, CpuId cpu, Addr line, BusOp op)
{
    BusRecord r;
    r.cycle = cycle;
    r.cpu = cpu;
    r.lineAddr = line;
    r.op = op;
    r.ctx = userCtx();
    return r;
}

} // namespace

TEST(Checker, DisabledMachineHasNoChecker)
{
    MachineConfig cfg = tinyConfig();
    cfg.check = false;
    // MPOS_CHECK in the environment would defeat the point of this
    // test; skip rather than fail under a forced-check run.
    if (sim::checkForced())
        GTEST_SKIP() << "MPOS_CHECK is set";
    sim::Machine m(cfg);
    EXPECT_EQ(m.checker(), nullptr);
}

TEST(Checker, OsEventAlternationPerCpu)
{
    Fixture f;
    f.chk->osEnter(100, 0, OsOp::IoSyscall);
    f.chk->osEnter(200, 1, OsOp::Interrupt); // other CPU: independent
    f.chk->osExit(300, 0, OsOp::IoSyscall);
    EXPECT_EQ(f.chk->violations().size(), 0u);

    f.chk->osEnter(400, 0, OsOp::Interrupt);
    f.chk->osEnter(500, 0, OsOp::Interrupt); // double enter
    EXPECT_EQ(f.mentions("already inside the OS"), 1u);

    f.chk->osExit(600, 0, OsOp::Interrupt);
    // Redundant exit with op None is the documented resumption
    // artifact (a rescheduled process replays its blocked OS path's
    // trailing exit marker) and must pass...
    f.chk->osExit(650, 0, OsOp::None);
    EXPECT_EQ(f.mentions("while not inside the OS"), 0u);
    // ...but a double exit naming a real op is a genuine imbalance.
    f.chk->osExit(700, 0, OsOp::Interrupt);
    EXPECT_EQ(f.mentions("while not inside the OS"), 1u);
}

TEST(Checker, OsEventCyclesMonotonicPerCpu)
{
    Fixture f;
    f.chk->osEnter(1000, 0, OsOp::IoSyscall);
    f.chk->osExit(900, 0, OsOp::IoSyscall); // goes backwards
    EXPECT_EQ(f.mentions("after cycle"), 1u);
    // A different CPU has its own clock and is unaffected.
    f.chk->osEnter(10, 1, OsOp::IoSyscall);
    EXPECT_EQ(f.chk->violations().size(), 1u);
}

TEST(Checker, StreamMayBeginInsideOrOutsideTheOs)
{
    // Streams can start mid-state: the first event for a CPU is
    // accepted whether it is an enter or an exit.
    Fixture f;
    f.chk->osExit(50, 0, OsOp::IdleLoop);
    f.chk->osEnter(60, 1, OsOp::IoSyscall);
    EXPECT_EQ(f.chk->violations().size(), 0u);
}

TEST(Checker, BusRecordMonotonicAlignedInRange)
{
    Fixture f;
    f.chk->busTransaction(rec(500, 0, 0x100, BusOp::Read));
    EXPECT_EQ(f.chk->violations().size(), 0u);

    f.chk->busTransaction(rec(400, 0, 0x100, BusOp::Read));
    EXPECT_EQ(f.mentions("after cycle"), 1u);

    f.chk->busTransaction(rec(600, 0, 0x103, BusOp::Read));
    EXPECT_EQ(f.mentions("not line-aligned"), 1u);

    f.chk->busTransaction(rec(700, 5, 0x100, BusOp::Read));
    EXPECT_EQ(f.mentions("invalid cpu"), 1u);

    // Cached ops must target real memory...
    f.chk->busTransaction(rec(800, 0, 0x40000000, BusOp::ReadEx));
    EXPECT_EQ(f.mentions("outside the"), 1u);
    // ...but uncached device traffic legitimately lives beyond it.
    f.chk->busTransaction(
        rec(900, 0, 0x40000000, BusOp::UncachedWrite));
    EXPECT_EQ(f.mentions("outside the"), 1u);
}

TEST(Checker, MonitorEventBounds)
{
    Fixture f;
    f.chk->evict(7, CacheKind::Data, 0x100, userCtx());
    EXPECT_EQ(f.mentions("evict event on invalid cpu"), 1u);
    f.chk->evict(0, CacheKind::Data, 0x101, userCtx());
    EXPECT_EQ(f.mentions("unaligned line"), 1u);
    f.chk->invalSharing(0, CacheKind::Data, 0x102);
    EXPECT_EQ(f.mentions("unaligned line"), 2u);
    f.chk->invalPageRealloc(9, 0x100);
    EXPECT_EQ(f.mentions("page-realloc flush event on invalid cpu"),
              1u);
    f.chk->contextSwitch(100, 0, -5, 0);
    EXPECT_EQ(f.mentions("context switch with pids"), 1u);
}

TEST(Checker, SyncEventBounds)
{
    Fixture f;
    f.chk->onSyncEvent(0, 3, 8, 0x3);
    EXPECT_EQ(f.chk->violations().size(), 0u);
    f.chk->onSyncEvent(0, 9, 8, 0); // lock id out of range
    EXPECT_EQ(f.mentions("sync event for lock"), 1u);
    f.chk->onSyncEvent(0, 3, 8, 0x4); // bit 2 but only 2 CPUs
    EXPECT_EQ(f.mentions("names a CPU beyond"), 1u);
    f.chk->onSyncEvent(6, 3, 8, 0); // cpu out of range
    EXPECT_EQ(f.mentions("sync event from invalid cpu"), 1u);
    EXPECT_EQ(f.chk->stats().syncEvents, 4u);
}

TEST(Checker, TlbEntryValidityAndValidator)
{
    Fixture f;
    TlbEntry e;
    e.pid = 1;
    e.vpage = 3;
    e.ppage = 3;
    e.writable = false;
    e.valid = true;
    f.chk->checkTlbEntry(0, e);
    EXPECT_EQ(f.chk->violations().size(), 0u);

    TlbEntry bad = e;
    bad.valid = false;
    f.chk->checkTlbEntry(0, bad);
    EXPECT_EQ(f.mentions("invalid TLB entry"), 1u);

    TlbEntry oob = e;
    oob.ppage = tinyConfig().memBytes; // way past the last page
    f.chk->checkTlbEntry(0, oob);
    EXPECT_EQ(f.mentions("outside memory"), 1u);

    // The page-table oracle gets the final word.
    f.chk->setMappingValidator(
        [](sim::Pid, Addr, Addr, bool writable) -> const char * {
            return writable ? "not writable in the page table"
                            : nullptr;
        });
    f.chk->checkTlbEntry(0, e); // read-only: validator accepts
    TlbEntry w = e;
    w.writable = true;
    f.chk->checkTlbEntry(0, w);
    EXPECT_EQ(f.mentions("TLB/page-table disagreement"), 1u);
    EXPECT_EQ(f.chk->stats().tlbChecks, 5u);
}

TEST(Checker, TagStateMismatchAndFilterUnsoundness)
{
    Fixture f;
    // Claim Modified in the state array without any tag or filter
    // update: the line-event sweep must flag both the tag/state
    // mismatch and the now-unsound snoop filter.
    const Addr line = 0x200;
    f.m.memory().caches(0).setState(line, Coh::Modified);
    f.chk->onLineEvent(line);
    EXPECT_EQ(f.mentions("tag/state mismatch"), 1u);
    EXPECT_EQ(f.mentions("snoop filter unsound"), 1u);
}

TEST(Checker, SwmrDoubleOwnerDetected)
{
    Fixture f;
    const Addr line = 0x300;
    f.m.memory().caches(0).setState(line, Coh::Modified);
    f.m.memory().caches(1).setState(line, Coh::Exclusive);
    f.chk->onLineEvent(line);
    EXPECT_EQ(f.mentions("SWMR"), 1u);
}

TEST(Checker, OwnerPlusSharerDetected)
{
    Fixture f;
    const Addr line = 0x400;
    f.m.memory().caches(0).setState(line, Coh::Modified);
    f.m.memory().caches(1).setState(line, Coh::Shared);
    f.chk->onLineEvent(line);
    EXPECT_EQ(f.mentions("SWMR"), 1u);
    EXPECT_EQ(f.mentions("copies machine-wide"), 1u);
}

TEST(Checker, CleanExperimentRunPerformsChecksWithoutViolations)
{
    core::ExperimentConfig cfg;
    cfg.kind = workload::WorkloadKind::Pmake;
    cfg.warmupCycles = 100000;
    cfg.measureCycles = 400000;
    cfg.machine.check = true;
    core::Experiment exp(cfg);
    const Checker *chk = exp.machine().checker();
    ASSERT_NE(chk, nullptr);
    // The experiment installs the kernel page-table oracle.
    EXPECT_TRUE(exp.machine().checker()->hasMappingValidator());
    exp.run();
    EXPECT_EQ(chk->stats().violations, 0u);
    EXPECT_GT(chk->stats().lineChecks, 0u);
    EXPECT_GT(chk->stats().busEvents, 0u);
    EXPECT_GT(chk->stats().monitorEvents, 0u);
    EXPECT_GT(chk->stats().syncEvents, 0u);
    EXPECT_GT(chk->stats().tlbChecks, 0u);
    EXPECT_EQ(chk->stats().fullSweeps, 1u);
}
