/**
 * @file
 * Protocol-conformance litmus tests: table-driven two- and four-CPU
 * access interleavings with the EXACT resulting coherence states and
 * bus-event tallies each protocol must produce.
 *
 *   mesi - the measured machine (Illinois): read miss fills E when no
 *          other cache answers, silent E->M on write, Upgrade only
 *          from Shared, clean E eviction without writeback.
 *   msi  - no Exclusive: every read miss fills Shared and the first
 *          write pays an Upgrade even on a private line.
 *   mi   - no shared states at all: every fill (even a read miss)
 *          steals the line, invalidating all remote copies.
 *
 * A remote dirty copy killed by snoopInvalidate transfers with the
 * requester's fill transaction and is NOT a separate Writeback;
 * writebacks appear only when a dirty line is evicted by capacity.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/memsys.hh"

using namespace mpos::sim;

namespace
{

/** Observer tallying the bus events a litmus row pins down. */
struct Tally : MonitorObserver
{
    uint64_t reads = 0, readex = 0, upgrades = 0, writebacks = 0;
    uint64_t evicts = 0, invalSharings = 0;

    void
    busTransaction(const BusRecord &r) override
    {
        switch (r.op) {
          case BusOp::Read: ++reads; break;
          case BusOp::ReadEx: ++readex; break;
          case BusOp::Upgrade: ++upgrades; break;
          case BusOp::Writeback: ++writebacks; break;
          default: break;
        }
    }
    void evict(CpuId, CacheKind, Addr, const MonitorContext &) override
    {
        ++evicts;
    }
    void invalSharing(CpuId, CacheKind, Addr) override
    {
        ++invalSharings;
    }
};

struct Step
{
    CpuId cpu;
    Addr addr;
    bool write;
};

/** Expected final coherence state of one line in one CPU's L2. */
struct EndState
{
    CpuId cpu;
    Addr addr;
    Coh st;
};

struct Counts
{
    uint64_t reads = 0, readex = 0, upgrades = 0, writebacks = 0;
    uint64_t evicts = 0, invalSharings = 0;
};

struct Litmus
{
    const char *name;
    Protocol proto;
    std::vector<Step> steps;
    std::vector<EndState> states;
    Counts want;
};

constexpr Addr A = 0x1000;
/** Conflicts with A in the 256 KB direct-mapped L2. */
constexpr Addr B = 0x1000 + 256 * 1024;

const Litmus litmusTable[] = {
    // ------------------------------------------------ MESI --------
    {"mesi/read-miss-fills-exclusive", Protocol::Mesi,
     {{0, A, false}},
     {{0, A, Coh::Exclusive}},
     {.reads = 1}},

    {"mesi/silent-upgrade-e-to-m", Protocol::Mesi,
     {{0, A, false}, {0, A, true}},
     {{0, A, Coh::Modified}},
     {.reads = 1}}, // no Upgrade: the E->M transition is bus-silent

    {"mesi/second-reader-downgrades", Protocol::Mesi,
     {{0, A, false}, {1, A, false}},
     {{0, A, Coh::Shared}, {1, A, Coh::Shared}},
     {.reads = 2}},

    {"mesi/upgrade-from-shared-invalidates", Protocol::Mesi,
     {{0, A, false}, {1, A, false}, {0, A, true}},
     {{0, A, Coh::Modified}, {1, A, Coh::Invalid}},
     {.reads = 2, .upgrades = 1, .invalSharings = 1}},

    {"mesi/write-miss-steals-dirty-copy", Protocol::Mesi,
     {{0, A, true}, {1, A, true}},
     {{0, A, Coh::Invalid}, {1, A, Coh::Modified}},
     {.readex = 2, .invalSharings = 1}},

    {"mesi/clean-exclusive-evicts-silently", Protocol::Mesi,
     {{0, A, false}, {0, B, false}},
     {{0, A, Coh::Invalid}, {0, B, Coh::Exclusive}},
     {.reads = 2, .evicts = 1}}, // E is clean: no writeback

    {"mesi/dirty-eviction-writes-back", Protocol::Mesi,
     {{0, A, true}, {0, B, false}},
     {{0, A, Coh::Invalid}, {0, B, Coh::Exclusive}},
     {.reads = 1, .readex = 1, .writebacks = 1, .evicts = 1}},

    {"mesi/four-cpu-broadcast-invalidate", Protocol::Mesi,
     {{0, A, false}, {1, A, false}, {2, A, false}, {3, A, false},
      {2, A, true}},
     {{0, A, Coh::Invalid}, {1, A, Coh::Invalid},
      {2, A, Coh::Modified}, {3, A, Coh::Invalid}},
     {.reads = 4, .upgrades = 1, .invalSharings = 3}},

    // ------------------------------------------------- MSI --------
    {"msi/read-miss-fills-shared", Protocol::Msi,
     {{0, A, false}},
     {{0, A, Coh::Shared}},
     {.reads = 1}},

    {"msi/private-write-still-pays-upgrade", Protocol::Msi,
     {{0, A, false}, {0, A, true}},
     {{0, A, Coh::Modified}},
     // The crucial MSI difference: no E, so the write hits Shared and
     // must broadcast an Upgrade even with zero remote copies.
     {.reads = 1, .upgrades = 1}},

    {"msi/two-readers-both-shared", Protocol::Msi,
     {{0, A, false}, {1, A, false}},
     {{0, A, Coh::Shared}, {1, A, Coh::Shared}},
     {.reads = 2}},

    {"msi/upgrade-invalidates-reader", Protocol::Msi,
     {{0, A, false}, {1, A, false}, {1, A, true}},
     {{0, A, Coh::Invalid}, {1, A, Coh::Modified}},
     {.reads = 2, .upgrades = 1, .invalSharings = 1}},

    {"msi/reader-downgrades-writer", Protocol::Msi,
     {{0, A, true}, {1, A, false}},
     {{0, A, Coh::Shared}, {1, A, Coh::Shared}},
     {.reads = 1, .readex = 1}},

    {"msi/four-cpu-broadcast-invalidate", Protocol::Msi,
     {{0, A, false}, {1, A, false}, {2, A, false}, {3, A, false},
      {3, A, true}},
     {{0, A, Coh::Invalid}, {1, A, Coh::Invalid},
      {2, A, Coh::Invalid}, {3, A, Coh::Modified}},
     {.reads = 4, .upgrades = 1, .invalSharings = 3}},

    // -------------------------------------------------- MI --------
    {"mi/read-miss-fills-modified", Protocol::Mi,
     {{0, A, false}},
     {{0, A, Coh::Modified}},
     {.reads = 1}},

    {"mi/write-hit-is-silent", Protocol::Mi,
     {{0, A, false}, {0, A, true}},
     {{0, A, Coh::Modified}},
     {.reads = 1}}, // already M after the read: nothing on the bus

    {"mi/remote-read-steals-the-line", Protocol::Mi,
     {{0, A, false}, {1, A, false}},
     {{0, A, Coh::Invalid}, {1, A, Coh::Modified}},
     {.reads = 2, .invalSharings = 1}},

    {"mi/remote-read-steals-dirty-line", Protocol::Mi,
     {{0, A, true}, {1, A, false}},
     {{0, A, Coh::Invalid}, {1, A, Coh::Modified}},
     {.reads = 1, .readex = 1, .invalSharings = 1}},

    {"mi/dirty-eviction-writes-back", Protocol::Mi,
     {{0, A, false}, {0, B, false}},
     // Even a read-only line is M under MI, so eviction writes back.
     {{0, A, Coh::Invalid}, {0, B, Coh::Modified}},
     {.reads = 2, .writebacks = 1, .evicts = 1}},

    {"mi/four-cpu-line-ping-pong", Protocol::Mi,
     {{0, A, false}, {1, A, true}, {2, A, false}, {3, A, false}},
     {{0, A, Coh::Invalid}, {1, A, Coh::Invalid},
      {2, A, Coh::Invalid}, {3, A, Coh::Modified}},
     {.reads = 3, .readex = 1, .invalSharings = 3}},
};

class ProtocolLitmus : public ::testing::TestWithParam<Litmus>
{
};

} // namespace

TEST_P(ProtocolLitmus, MatchesExpectedStatesAndBusEvents)
{
    const Litmus &t = GetParam();
    MachineConfig cfg;
    cfg.protocol = t.proto;
    Monitor mon;
    Tally tally;
    mon.attach(&tally);
    MonitorContext ctx;
    MemorySystem mem(cfg, mon);

    Cycle now = 0;
    for (const Step &s : t.steps)
        mem.dataAccess(s.cpu, s.addr, s.write, now++, ctx);

    for (const EndState &e : t.states)
        EXPECT_EQ(mem.caches(e.cpu).getState(e.addr), e.st)
            << t.name << ": cpu " << e.cpu;

    EXPECT_EQ(tally.reads, t.want.reads) << t.name;
    EXPECT_EQ(tally.readex, t.want.readex) << t.name;
    EXPECT_EQ(tally.upgrades, t.want.upgrades) << t.name;
    EXPECT_EQ(tally.writebacks, t.want.writebacks) << t.name;
    EXPECT_EQ(tally.evicts, t.want.evicts) << t.name;
    EXPECT_EQ(tally.invalSharings, t.want.invalSharings) << t.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ProtocolLitmus, ::testing::ValuesIn(litmusTable),
    [](const ::testing::TestParamInfo<Litmus> &info) {
        // gtest test names permit [A-Za-z0-9_] only.
        std::string n = info.param.name;
        for (char &c : n)
            if (c == '/' || c == '-')
                c = '_';
        return n;
    });
