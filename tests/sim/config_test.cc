/**
 * @file
 * Tests for the central machine-configuration validator.
 *
 * Every geometry rule the simulator relies on (power-of-two sets,
 * line/page/memory divisibility, the 64-CPU sharer-bitmask width,
 * the protocol id, the sim-thread cap) is checked in one place --
 * validateConfig, run from
 * the Machine and MemorySystem constructor init-lists -- and each
 * violation must surface as a typed SimError(BadConfig), not as an
 * assert or a wrong simulation.
 */

#include <gtest/gtest.h>

#include "sim/machine.hh"
#include "sim/types.hh"
#include "util/error.hh"

using namespace mpos;
using sim::MachineConfig;
using util::ErrCode;
using util::SimError;

namespace
{

/** The validator must reject cfg with a typed BadConfig error. */
void
expectRejected(const MachineConfig &cfg, const char *why)
{
    try {
        sim::validateConfig(cfg);
        FAIL() << "validateConfig accepted a bad config: " << why;
    } catch (const SimError &e) {
        EXPECT_EQ(e.code(), ErrCode::BadConfig) << why;
    }
}

} // namespace

TEST(ConfigValidation, DefaultConfigIsValid)
{
    const MachineConfig cfg;
    EXPECT_NO_THROW(sim::validateConfig(cfg));
    // Returns its argument so constructors can run it in init-lists.
    EXPECT_EQ(&sim::validateConfig(cfg), &cfg);
}

TEST(ConfigValidation, CpuCountBounds)
{
    MachineConfig cfg;
    cfg.numCpus = 0;
    expectRejected(cfg, "zero CPUs");
    cfg.numCpus = 65; // sharer bitmasks are one uint64_t wide
    expectRejected(cfg, "more CPUs than the sharer masks track");
    cfg.numCpus = 64; // the widest machine the masks support
    EXPECT_NO_THROW(sim::validateConfig(cfg));
}

TEST(ConfigValidation, ProtocolBounds)
{
    MachineConfig cfg;
    for (const auto p : {sim::Protocol::Mesi, sim::Protocol::Msi,
                         sim::Protocol::Mi}) {
        cfg.protocol = p;
        EXPECT_NO_THROW(sim::validateConfig(cfg));
    }
    cfg.protocol = sim::Protocol(sim::numProtocols);
    expectRejected(cfg, "protocol id past the known protocols");
}

TEST(ConfigValidation, ProtocolNamesRoundTrip)
{
    for (uint8_t i = 0; i < sim::numProtocols; ++i) {
        const auto p = sim::Protocol(i);
        sim::Protocol parsed;
        ASSERT_TRUE(sim::parseProtocol(sim::protocolName(p), parsed))
            << sim::protocolName(p);
        EXPECT_EQ(parsed, p);
    }
    sim::Protocol parsed;
    EXPECT_FALSE(sim::parseProtocol("moesi", parsed));
    EXPECT_FALSE(sim::parseProtocol("", parsed));
}

TEST(ConfigValidation, LineAndPageGeometry)
{
    MachineConfig cfg;
    cfg.lineBytes = 24; // not a power of two
    expectRejected(cfg, "non-power-of-two line");

    cfg = MachineConfig{};
    cfg.lineBytes = 2; // below the minimum word
    expectRejected(cfg, "line smaller than a word");

    cfg = MachineConfig{};
    cfg.pageBytes = 3000; // not a power of two
    expectRejected(cfg, "non-power-of-two page");

    cfg = MachineConfig{};
    cfg.pageBytes = cfg.lineBytes / 2; // page must hold >= 1 line
    expectRejected(cfg, "page smaller than a line");
}

TEST(ConfigValidation, MemoryGeometry)
{
    MachineConfig cfg;
    cfg.memBytes = 0;
    expectRejected(cfg, "no memory");

    cfg = MachineConfig{};
    cfg.memBytes = cfg.pageBytes + 1; // not page-aligned
    expectRejected(cfg, "memory not a multiple of the page size");
}

TEST(ConfigValidation, CacheGeometry)
{
    MachineConfig cfg;
    cfg.icacheAssoc = 0;
    expectRejected(cfg, "zero-way I-cache");

    cfg = MachineConfig{};
    cfg.l1dBytes = 0;
    expectRejected(cfg, "zero-byte L1D");

    cfg = MachineConfig{};
    cfg.l2dBytes = 3 * cfg.lineBytes; // sets not a power of two
    expectRejected(cfg, "non-power-of-two L2 set count");
}

TEST(ConfigValidation, TlbAndTiming)
{
    MachineConfig cfg;
    cfg.tlbEntries = 0;
    expectRejected(cfg, "zero TLB entries");

    cfg = MachineConfig{};
    cfg.instrPerLine = 0;
    expectRejected(cfg, "zero instructions per line");

    cfg = MachineConfig{};
    cfg.cyclesPerInstr = 0;
    expectRejected(cfg, "zero cycles per instruction");
}

TEST(ConfigValidation, SimThreadCap)
{
    MachineConfig cfg;
    cfg.simThreads = 65; // far beyond any plausible host
    expectRejected(cfg, "absurd sim-thread count");

    cfg = MachineConfig{};
    cfg.simThreads = 8;
    EXPECT_NO_THROW(sim::validateConfig(cfg));
}

/** Constructors must route through the validator (init-list), so a
 *  bad geometry can never reach a partially built machine. */
TEST(ConfigValidation, MachineConstructorRejectsBadGeometry)
{
    MachineConfig cfg;
    cfg.lineBytes = 24;
    EXPECT_THROW({ sim::Machine m(cfg); }, SimError);

    MachineConfig wide;
    wide.numCpus = 65;
    EXPECT_THROW({ sim::Machine m(wide); }, SimError);
}
