/** @file Coherence and hierarchy tests for the memory system. */

#include <gtest/gtest.h>

#include "sim/memsys.hh"
#include "util/rng.hh"

using namespace mpos::sim;

namespace
{

/** Observer that tallies events for assertions. */
struct Tally : MonitorObserver
{
    uint64_t reads = 0, readex = 0, upgrades = 0, writebacks = 0,
             uncached = 0;
    uint64_t evicts = 0, invalSharings = 0, invalReallocs = 0,
             pageFlushes = 0;
    uint64_t ifetchTx = 0;

    void
    busTransaction(const BusRecord &r) override
    {
        switch (r.op) {
          case BusOp::Read: ++reads; break;
          case BusOp::ReadEx: ++readex; break;
          case BusOp::Upgrade: ++upgrades; break;
          case BusOp::Writeback: ++writebacks; break;
          default: ++uncached; break;
        }
        if (r.cache == CacheKind::Instr)
            ++ifetchTx;
    }
    void evict(CpuId, CacheKind, Addr, const MonitorContext &) override
    {
        ++evicts;
    }
    void invalSharing(CpuId, CacheKind, Addr) override
    {
        ++invalSharings;
    }
    void invalPageRealloc(CpuId, Addr) override { ++invalReallocs; }
    void flushPage(CpuId, Addr, uint32_t) override { ++pageFlushes; }
};

struct Fixture : ::testing::Test
{
    Fixture() : mem(cfg, mon) { mon.attach(&tally); }

    MachineConfig cfg;
    Monitor mon;
    Tally tally;
    MonitorContext ctx;
    MemorySystem mem{cfg, mon};
};

} // namespace

TEST_F(Fixture, ReadMissFillsExclusive)
{
    const auto r = mem.dataAccess(0, 0x1000, false, 0, ctx);
    EXPECT_TRUE(r.busAccess);
    EXPECT_EQ(r.cycles, 1 + cfg.busMissStall);
    EXPECT_EQ(mem.caches(0).getState(0x1000), Coh::Exclusive);
}

TEST_F(Fixture, SecondReaderDowngradesToShared)
{
    mem.dataAccess(0, 0x1000, false, 0, ctx);
    mem.dataAccess(1, 0x1000, false, 1, ctx);
    EXPECT_EQ(mem.caches(0).getState(0x1000), Coh::Shared);
    EXPECT_EQ(mem.caches(1).getState(0x1000), Coh::Shared);
}

TEST_F(Fixture, SilentUpgradeFromExclusive)
{
    mem.dataAccess(0, 0x1000, false, 0, ctx);
    const auto r = mem.dataAccess(0, 0x1000, true, 1, ctx);
    EXPECT_FALSE(r.busAccess); // E -> M needs no bus
    EXPECT_EQ(mem.caches(0).getState(0x1000), Coh::Modified);
}

TEST_F(Fixture, WriteOnSharedIssuesUpgradeAndInvalidates)
{
    mem.dataAccess(0, 0x1000, false, 0, ctx);
    mem.dataAccess(1, 0x1000, false, 1, ctx);
    const auto r = mem.dataAccess(0, 0x1000, true, 2, ctx);
    EXPECT_TRUE(r.busAccess);
    EXPECT_EQ(tally.upgrades, 1u);
    EXPECT_EQ(tally.invalSharings, 1u);
    EXPECT_EQ(mem.caches(1).getState(0x1000), Coh::Invalid);
    EXPECT_FALSE(mem.caches(1).l2d.contains(0x1000));
    EXPECT_FALSE(mem.caches(1).l1d.contains(0x1000));
}

TEST_F(Fixture, WriteMissInvalidatesOtherCopies)
{
    mem.dataAccess(0, 0x1000, false, 0, ctx);
    mem.dataAccess(1, 0x1000, true, 1, ctx);
    EXPECT_EQ(tally.readex, 1u);
    EXPECT_EQ(mem.caches(0).getState(0x1000), Coh::Invalid);
    EXPECT_EQ(mem.caches(1).getState(0x1000), Coh::Modified);
}

TEST_F(Fixture, L1MissL2HitCostsL2Stall)
{
    mem.dataAccess(0, 0x1000, false, 0, ctx);
    // Evict from L1 only, by filling a conflicting L1 set: L1 is
    // 64 KB direct-mapped, so 64 KB away conflicts in L1 but not in
    // the 256 KB L2.
    mem.dataAccess(0, 0x1000 + 64 * 1024, false, 1, ctx);
    const auto r = mem.dataAccess(0, 0x1000, false, 2, ctx);
    EXPECT_FALSE(r.busAccess);
    EXPECT_EQ(r.cycles, 1 + cfg.l2HitStall);
}

TEST_F(Fixture, DirtyL2EvictionWritesBack)
{
    mem.dataAccess(0, 0x1000, true, 0, ctx);
    // Conflict in the 256 KB direct-mapped L2.
    mem.dataAccess(0, 0x1000 + 256 * 1024, false, 1, ctx);
    EXPECT_EQ(tally.writebacks, 1u);
    EXPECT_EQ(tally.evicts, 1u);
}

TEST_F(Fixture, InclusionL2EvictionDropsL1)
{
    mem.dataAccess(0, 0x1000, false, 0, ctx);
    mem.dataAccess(0, 0x1000 + 256 * 1024, false, 1, ctx);
    EXPECT_FALSE(mem.caches(0).l1d.contains(0x1000));
}

TEST_F(Fixture, IFetchMissAndHit)
{
    const auto r1 = mem.ifetchAccess(0, 0x2000, 0, ctx);
    EXPECT_TRUE(r1.busAccess);
    EXPECT_EQ(tally.ifetchTx, 1u);
    const auto r2 = mem.ifetchAccess(0, 0x2000, 1, ctx);
    EXPECT_FALSE(r2.busAccess);
    EXPECT_EQ(r2.cycles,
              Cycle(cfg.instrPerLine) * cfg.cyclesPerInstr);
}

TEST_F(Fixture, ICacheNotInvalidatedByStores)
{
    mem.ifetchAccess(0, 0x2000, 0, ctx);
    mem.dataAccess(1, 0x2000, true, 1, ctx);
    // R3000 I-caches are not snooped on writes.
    EXPECT_TRUE(mem.caches(0).icache.contains(0x2000));
}

TEST_F(Fixture, FlushICachesForPage)
{
    mem.ifetchAccess(0, 0x4000, 0, ctx);
    mem.ifetchAccess(1, 0x4010, 0, ctx);
    mem.flushICachesForPage(0x4000 / cfg.pageBytes);
    EXPECT_FALSE(mem.caches(0).icache.contains(0x4000));
    EXPECT_FALSE(mem.caches(1).icache.contains(0x4010));
    EXPECT_EQ(tally.invalReallocs, 2u);
    EXPECT_EQ(tally.pageFlushes, uint64_t(cfg.numCpus));
}

TEST_F(Fixture, UncachedBypassesCaches)
{
    const auto r = mem.uncachedAccess(0, 0x90000000, false, 0, ctx);
    EXPECT_TRUE(r.busAccess);
    EXPECT_EQ(tally.uncached, 1u);
    EXPECT_FALSE(mem.caches(0).l2d.contains(0x90000000 & ~15ULL));
}

TEST_F(Fixture, BypassAccessDoesNotInstall)
{
    const auto r = mem.bypassAccess(0, 0x1000, false, 0, ctx);
    EXPECT_TRUE(r.busAccess);
    EXPECT_FALSE(mem.caches(0).l2d.contains(0x1000));
    // But it still keeps others coherent.
    mem.dataAccess(1, 0x2000, true, 1, ctx);
    mem.bypassAccess(0, 0x2000, true, 2, ctx);
    EXPECT_EQ(mem.caches(1).getState(0x2000), Coh::Invalid);
}

TEST_F(Fixture, BusOccupancyQueues)
{
    MachineConfig qcfg;
    qcfg.busOccupancy = 20;
    Monitor m2;
    MemorySystem mq(qcfg, m2);
    const auto r1 = mq.dataAccess(0, 0x1000, false, 100, ctx);
    EXPECT_EQ(r1.cycles, 1 + qcfg.busMissStall); // no queueing yet
    const auto r2 = mq.dataAccess(1, 0x2000, false, 105, ctx);
    // Second request waits for the 20-cycle occupancy minus 5 elapsed.
    EXPECT_EQ(r2.cycles, 1 + qcfg.busMissStall + 15);
}

TEST_F(Fixture, SharersMaskTracksReaders)
{
    EXPECT_EQ(mem.sharersMask(0x1000), 0u);
    mem.dataAccess(0, 0x1000, false, 0, ctx);
    EXPECT_EQ(mem.sharersMask(0x1000), 0b0001u);
    mem.dataAccess(2, 0x1000, false, 1, ctx);
    EXPECT_EQ(mem.sharersMask(0x1000), 0b0101u);
    mem.dataAccess(3, 0x1000, false, 2, ctx);
    EXPECT_EQ(mem.sharersMask(0x1000), 0b1101u);
}

TEST_F(Fixture, SharersMaskCollapsesOnWrite)
{
    mem.dataAccess(0, 0x1000, false, 0, ctx);
    mem.dataAccess(1, 0x1000, false, 1, ctx);
    mem.dataAccess(2, 0x1000, false, 2, ctx);
    mem.dataAccess(3, 0x1000, true, 3, ctx); // invalidates 0, 1, 2
    EXPECT_EQ(mem.sharersMask(0x1000), 0b1000u);
    EXPECT_EQ(tally.invalSharings, 3u);
}

TEST_F(Fixture, SharersMaskClearsOnEviction)
{
    mem.dataAccess(0, 0x1000, false, 0, ctx);
    EXPECT_EQ(mem.sharersMask(0x1000), 0b0001u);
    // Conflict in the 256 KB direct-mapped L2 evicts the line.
    mem.dataAccess(0, 0x1000 + 256 * 1024, false, 1, ctx);
    EXPECT_EQ(mem.sharersMask(0x1000), 0u);
    EXPECT_EQ(mem.sharersMask(0x1000 + 256 * 1024), 0b0001u);
}

TEST_F(Fixture, SharersMaskIgnoresBypassAndUncached)
{
    mem.bypassAccess(0, 0x1000, false, 0, ctx);
    mem.uncachedAccess(0, 0x2000, true, 1, ctx);
    // Neither installs a line, so neither may set a sharer bit.
    EXPECT_EQ(mem.sharersMask(0x1000), 0u);
    EXPECT_EQ(mem.sharersMask(0x2000), 0u);
}

/** Property: single-writer invariant under random traffic. */
class CoherenceStress : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(CoherenceStress, SingleWriterAndInclusion)
{
    MachineConfig cfg;
    Monitor mon;
    MemorySystem mem(cfg, mon);
    MonitorContext ctx;
    mpos::util::Rng rng(GetParam());

    const uint64_t lines = 512;
    for (int i = 0; i < 30000; ++i) {
        const CpuId cpu = CpuId(rng.below(cfg.numCpus));
        const Addr a = rng.below(lines) * 16;
        mem.dataAccess(cpu, a, rng.chance(0.3), Cycle(i), ctx);

        if (i % 100 == 0) {
            for (uint64_t l = 0; l < lines; ++l) {
                const Addr line = l * 16;
                int modified = 0, present = 0;
                for (CpuId c = 0; c < cfg.numCpus; ++c) {
                    const Coh st = mem.caches(c).getState(line);
                    if (st == Coh::Modified)
                        ++modified;
                    if (st != Coh::Invalid)
                        ++present;
                    // Inclusion: L1 resident implies L2 resident.
                    if (mem.caches(c).l1d.contains(line)) {
                        EXPECT_TRUE(mem.caches(c).l2d.contains(line));
                    }
                    // State Invalid implies not resident in L2.
                    if (st == Coh::Invalid) {
                        EXPECT_FALSE(mem.caches(c).l2d.contains(line));
                    }
                    // Snoop filter: bit c mirrors the coherence state.
                    const bool bit =
                        mem.sharersMask(line) & (uint64_t(1) << c);
                    EXPECT_EQ(bit, st != Coh::Invalid);
                }
                EXPECT_LE(modified, 1);
                if (modified == 1) {
                    EXPECT_EQ(present, 1);
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoherenceStress,
                         ::testing::Values(3, 17, 4242));

TEST(WideMachine, SixtyFourCpuSharerMaskTracksHighCpus)
{
    MachineConfig cfg;
    cfg.numCpus = 64;
    cfg.memBytes = 1024 * 1024; // keep the 64-CPU test allocation small
    Monitor mon;
    Tally tally;
    mon.attach(&tally);
    MonitorContext ctx;
    MemorySystem mem(cfg, mon);

    const Addr line = 0x1000;
    for (CpuId c = 0; c < 64; ++c)
        mem.dataAccess(c, line, false, Cycle(c), ctx);
    EXPECT_EQ(mem.sharersMask(line), ~uint64_t(0));
    for (CpuId c : {CpuId(0), CpuId(31), CpuId(32), CpuId(63)})
        EXPECT_EQ(mem.caches(c).getState(line), Coh::Shared) << c;

    // A store from CPU 63 must invalidate all 63 remote copies.
    mem.dataAccess(63, line, true, 100, ctx);
    EXPECT_EQ(tally.invalSharings, 63u);
    EXPECT_EQ(mem.sharersMask(line), uint64_t(1) << 63);
    EXPECT_EQ(mem.caches(63).getState(line), Coh::Modified);
    EXPECT_EQ(mem.caches(0).getState(line), Coh::Invalid);
}
