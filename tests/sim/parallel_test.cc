/**
 * @file
 * Epoch-equivalence tests for the parallel epoch/barrier core.
 *
 * The parallel core is a pure optimization: speculative windows plus
 * lockstep fallback must reproduce the serial fast path bit for bit.
 * The matrix here drives seed x simulated-CPU x host-sim-thread
 * combinations through the three-way fuzz differential (fast vs
 * one-tick reference vs parallel) and through full kernel workloads,
 * asserting identical event streams, counters, and cycle accounts.
 * A separate test pins the engagement rules: any layer that observes
 * mid-window state must force the serial core.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "sim/check/fuzz.hh"
#include "sim/machine.hh"
#include "sim/parallel.hh"

using namespace mpos;

namespace
{

core::ExperimentConfig
workloadConfig(uint64_t seed, uint32_t num_cpus, uint32_t sim_threads)
{
    core::ExperimentConfig cfg;
    cfg.kind = workload::WorkloadKind::Pmake;
    cfg.warmupCycles = 100000;
    cfg.measureCycles = 400000;
    cfg.options.seed = seed;
    cfg.machine.numCpus = num_cpus;
    cfg.machine.simThreads = sim_threads;
    return cfg;
}

void
expectSameResults(core::Experiment &a, core::Experiment &b)
{
    EXPECT_EQ(a.machine().now(), b.machine().now());
    EXPECT_EQ(a.machine().memory().busTransactions(),
              b.machine().memory().busTransactions());
    EXPECT_EQ(a.misses().total(), b.misses().total());
    EXPECT_EQ(a.elapsed(), b.elapsed());
    const sim::CycleAccount eacc = a.account(), pacc = b.account();
    for (unsigned m = 0; m < 3; ++m) {
        EXPECT_EQ(eacc.total[m], pacc.total[m]) << "total mode " << m;
        EXPECT_EQ(eacc.stall[m], pacc.stall[m]) << "stall mode " << m;
    }
}

} // namespace

/**
 * The headline matrix: every (seed, simulated CPUs, host sim-threads)
 * combination must produce a monitor event stream and final machine
 * state bit-identical to the serial fast path AND to the one-tick
 * reference core. runDifferential does the three-way comparison.
 */
TEST(ParallelCore, EpochEquivalenceMatrix)
{
    for (uint64_t seed : {3u, 9u}) {
        for (uint32_t cpus : {1u, 2u, 4u}) {
            for (uint32_t threads : {1u, 2u, 4u}) {
                SCOPED_TRACE("seed " + std::to_string(seed) +
                             " cpus " + std::to_string(cpus) +
                             " threads " + std::to_string(threads));
                sim::FuzzOptions opt;
                opt.numCpus = cpus;
                opt.scriptLen = 1500;
                opt.runCycles = 25000;
                opt.simThreads = threads;
                const sim::FuzzOutcome out =
                    sim::runDifferential(seed, opt);
                EXPECT_TRUE(out.ok) << out.detail;
            }
        }
    }
}

/** Full kernel workload, serial vs parallel core, all counters. */
TEST(ParallelCore, PmakeMatchesSerialFastPath)
{
    for (uint32_t threads : {2u, 4u}) {
        SCOPED_TRACE("threads " + std::to_string(threads));
        core::Experiment serial(workloadConfig(7, 4, 1));
        serial.run();
        core::Experiment parallel(workloadConfig(7, 4, threads));
        parallel.run();
        expectSameResults(serial, parallel);
    }
}

/** An 8-CPU machine -- the bench headliner's shape -- too. */
TEST(ParallelCore, EightCpuPmakeMatchesSerialFastPath)
{
    core::Experiment serial(workloadConfig(7, 8, 1));
    serial.run();
    core::Experiment parallel(workloadConfig(7, 8, 4));
    parallel.run();
    expectSameResults(serial, parallel);
}

/**
 * The equivalence above must not be vacuous: on a plain fast-path
 * machine the parallel core has to engage and actually commit
 * speculative windows (if every window aborted into the lockstep
 * fallback, the whole feature would be dead weight).
 */
TEST(ParallelCore, CommitsWindowsOnAWorkload)
{
    core::Experiment exp(workloadConfig(7, 4, 4));
    exp.run();
    const sim::ParallelCore *par = exp.machine().parallel();
    ASSERT_NE(par, nullptr);
    EXPECT_EQ(par->threads(), 4u);
    const sim::ParallelCore::Stats &st = par->stats();
    EXPECT_GT(st.windows, 0u) << "no speculative window ever "
                                 "committed; the core is vacuous";
    EXPECT_GT(st.windowCycles, 0u);
    EXPECT_GT(st.windowItems, 0u);
}

/** Engagement rules: anything observing mid-window state forces the
 *  serial core, as does a machine the windows cannot handle. */
TEST(ParallelCore, SerialFallbackGating)
{
    sim::MachineConfig base;
    base.simThreads = 4;

    {
        sim::Machine m(base);
        EXPECT_NE(m.parallel(), nullptr) << "plain fast-path machine "
                                            "should engage";
    }
    {
        sim::MachineConfig cfg = base;
        cfg.simThreads = 1;
        sim::Machine m(cfg);
        EXPECT_EQ(m.parallel(), nullptr);
    }
    {
        sim::MachineConfig cfg = base;
        cfg.numCpus = 1; // more threads than CPUs cannot help
        sim::Machine m(cfg);
        EXPECT_EQ(m.parallel(), nullptr);
    }
    {
        sim::MachineConfig cfg = base;
        cfg.check = true; // checker observes mid-window state
        sim::Machine m(cfg);
        EXPECT_EQ(m.parallel(), nullptr);
    }
    {
        sim::MachineConfig cfg = base;
        cfg.slowSim = true; // reference core is the whole point
        sim::Machine m(cfg);
        EXPECT_EQ(m.parallel(), nullptr);
    }
    {
        sim::MachineConfig cfg = base;
        cfg.busOccupancy = 2; // occupancy queue is a shared write
        sim::Machine m(cfg);
        EXPECT_EQ(m.parallel(), nullptr);
    }
    {
        sim::MachineConfig cfg = base;
        cfg.watchdogCycles = 1000000; // polls mid-window
        sim::Machine m(cfg);
        EXPECT_EQ(m.parallel(), nullptr);
    }
    {
        sim::MachineConfig cfg = base;
        cfg.faultSeed = 1; // fault plan perturbs mid-window
        sim::Machine m(cfg);
        EXPECT_EQ(m.parallel(), nullptr);
    }
}
