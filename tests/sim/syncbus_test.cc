/** @file Tests for the dual-protocol lock transport. */

#include <gtest/gtest.h>

#include "sim/syncbus.hh"
#include "util/binio.hh"
#include "util/error.hh"

using namespace mpos::sim;

TEST(SyncBus, UncachedAcquireCostsProtocolOps)
{
    MachineConfig cfg; // cachedLockRmw = false
    SyncTransport st(cfg, 4);
    const Cycle c = st.access(0, 0, LockEvent::AcquireSuccess);
    EXPECT_EQ(c, Cycle(cfg.syncOpsPerAcquire) * cfg.syncBusOpCycles);
    EXPECT_EQ(st.counts(0).uncachedOps, cfg.syncOpsPerAcquire);
}

TEST(SyncBus, UncachedSpinAndReleaseCostOneOp)
{
    MachineConfig cfg;
    SyncTransport st(cfg, 4);
    EXPECT_EQ(st.access(0, 0, LockEvent::AcquireFail),
              cfg.syncBusOpCycles);
    EXPECT_EQ(st.access(0, 0, LockEvent::Release),
              cfg.syncBusOpCycles);
}

TEST(SyncBus, CachedReacquireByOwnerIsFree)
{
    MachineConfig cfg;
    cfg.cachedLockRmw = true;
    SyncTransport st(cfg, 4);
    // First acquire fetches the line.
    EXPECT_GT(st.access(0, 0, LockEvent::AcquireSuccess), 0u);
    EXPECT_EQ(st.access(0, 0, LockEvent::Release), 0u);
    // Undisturbed reacquire: pure cache hit (the paper's key point).
    EXPECT_EQ(st.access(0, 0, LockEvent::AcquireSuccess), 0u);
}

TEST(SyncBus, CachedHandoffCostsOneBusOp)
{
    MachineConfig cfg;
    cfg.cachedLockRmw = true;
    SyncTransport st(cfg, 4);
    st.access(0, 0, LockEvent::AcquireSuccess);
    st.access(0, 0, LockEvent::Release);
    EXPECT_EQ(st.access(1, 0, LockEvent::AcquireSuccess),
              cfg.busMissStall);
}

TEST(SyncBus, CachedSpinHitsAfterFirstPoll)
{
    MachineConfig cfg;
    cfg.cachedLockRmw = true;
    SyncTransport st(cfg, 4);
    st.access(0, 0, LockEvent::AcquireSuccess);
    EXPECT_EQ(st.access(1, 0, LockEvent::AcquireFail),
              cfg.busMissStall); // first poll fetches
    EXPECT_EQ(st.access(1, 0, LockEvent::AcquireFail), 0u); // spins hit
    // Release by owner invalidates the spinner's copy.
    EXPECT_EQ(st.access(0, 0, LockEvent::Release), cfg.busMissStall);
}

TEST(SyncBus, BothProtocolsCountedSimultaneously)
{
    MachineConfig cfg; // active: sync bus
    SyncTransport st(cfg, 4);
    st.access(0, 1, LockEvent::AcquireSuccess);
    st.access(0, 1, LockEvent::Release);
    st.access(0, 1, LockEvent::AcquireSuccess);
    const auto &c = st.counts(1);
    EXPECT_EQ(c.uncachedOps, 2 * cfg.syncOpsPerAcquire + 1);
    // Cached model: fetch, free release, free reacquire.
    EXPECT_EQ(c.cachedOps, 1u);
    EXPECT_GT(st.uncachedStallTotal(), st.cachedStallTotal());
}

TEST(SyncBus, PerCpuStallAccounting)
{
    MachineConfig cfg;
    SyncTransport st(cfg, 4);
    st.access(2, 0, LockEvent::AcquireSuccess);
    EXPECT_GT(st.stallCycles(2), 0u);
    EXPECT_EQ(st.stallCycles(1), 0u);
}

TEST(SyncBus, SumOpsRange)
{
    MachineConfig cfg;
    SyncTransport st(cfg, 8);
    st.access(0, 2, LockEvent::Release);
    st.access(0, 6, LockEvent::Release);
    EXPECT_EQ(st.sumOps(4).uncachedOps, 1u);
    EXPECT_EQ(st.sumOps(8).uncachedOps, 2u);
    EXPECT_EQ(st.sumOps(100).uncachedOps, 2u); // clamped
}

TEST(SyncBus, HighLocalityMeansFewCachedOps)
{
    MachineConfig cfg;
    SyncTransport st(cfg, 1);
    // 100 acquire/release pairs by the same CPU, undisturbed.
    for (int i = 0; i < 100; ++i) {
        st.access(0, 0, LockEvent::AcquireSuccess);
        st.access(0, 0, LockEvent::Release);
    }
    // Table 12's last column: caching slashes the bus operations.
    EXPECT_EQ(st.counts(0).cachedOps, 1u);
    EXPECT_EQ(st.counts(0).uncachedOps,
              100u * (cfg.syncOpsPerAcquire + 1));
}

TEST(SyncBus, OutOfRangeLockIdRaisesTypedError)
{
    MachineConfig cfg;
    SyncTransport st(cfg, 4);
    // Lock ids arrive from snapshots and --serve requests, so a bad
    // one must travel the typed error channel, not panic.
    try {
        st.access(0, 4, LockEvent::AcquireSuccess);
        FAIL() << "out-of-range access was accepted";
    } catch (const mpos::util::SimError &e) {
        EXPECT_EQ(e.code(), mpos::util::ErrCode::BadConfig);
    }
    try {
        st.counts(99);
        FAIL() << "out-of-range counts() was accepted";
    } catch (const mpos::util::SimError &e) {
        EXPECT_EQ(e.code(), mpos::util::ErrCode::BadConfig);
    }
}

TEST(SyncBus, TicketCostsUnderBothModels)
{
    MachineConfig cfg; // active: sync bus
    SyncTransport st(cfg, 2);
    // Fetch-and-add take costs a full emulated RMW; polls and the
    // now-serving bump are single transactions.
    EXPECT_EQ(st.access(0, 0, LockEvent::TicketTake),
              Cycle(cfg.syncOpsPerAcquire) * cfg.syncBusOpCycles);
    EXPECT_EQ(st.access(1, 0, LockEvent::TicketPoll),
              cfg.syncBusOpCycles);
    EXPECT_EQ(st.access(0, 0, LockEvent::TicketRelease),
              cfg.syncBusOpCycles);
}

TEST(SyncBus, CachedTicketReacquireUndisturbedIsFree)
{
    MachineConfig cfg;
    cfg.cachedLockRmw = true;
    SyncTransport st(cfg, 2);
    EXPECT_EQ(st.access(0, 0, LockEvent::TicketTake),
              cfg.busMissStall); // first touch fetches the line
    EXPECT_EQ(st.access(0, 0, LockEvent::TicketRelease), 0u);
    // Undisturbed re-take: still the sole owner, pure cache hit.
    EXPECT_EQ(st.access(0, 0, LockEvent::TicketTake), 0u);
}

TEST(SyncBus, CachedMcsLocalSpinHitsUntilHandoff)
{
    MachineConfig cfg;
    cfg.cachedLockRmw = true;
    SyncTransport st(cfg, 2);
    EXPECT_EQ(st.access(0, 0, LockEvent::McsSwap), cfg.busMissStall);
    // Enqueue: tail swap + the link write into the holder's node.
    EXPECT_EQ(st.access(1, 0, LockEvent::McsEnqueue),
              2 * cfg.busMissStall);
    // The waiter fetches its own queue node once, then spins locally
    // for free -- the MCS advantage the global-spin primitives lack.
    EXPECT_EQ(st.access(1, 0, LockEvent::McsLocalPoll),
              cfg.busMissStall);
    EXPECT_EQ(st.access(1, 0, LockEvent::McsLocalPoll), 0u);
    EXPECT_EQ(st.qnodeAtMask(0), uint64_t(1) << 1);
    // Hand-off writes the successor's node, invalidating its copy...
    EXPECT_EQ(st.access(0, 0, LockEvent::McsHandoff, 1),
              cfg.busMissStall);
    EXPECT_EQ(st.qnodeAtMask(0), 0u);
    // ...so the next poll refetches (and sees the grant).
    EXPECT_EQ(st.access(1, 0, LockEvent::McsLocalPoll),
              cfg.busMissStall);
}

TEST(SyncBus, UncachedMcsLocalPollStillCrossesTheBus)
{
    MachineConfig cfg; // active: sync bus (never cached)
    SyncTransport st(cfg, 2);
    st.access(1, 0, LockEvent::McsEnqueue);
    // Without cached locks the "local" spin degenerates to a bus
    // crossing per poll: MCS only pays off with cached lock RMW.
    EXPECT_EQ(st.access(1, 0, LockEvent::McsLocalPoll),
              cfg.syncBusOpCycles);
    EXPECT_EQ(st.access(1, 0, LockEvent::McsLocalPoll),
              cfg.syncBusOpCycles);
}

TEST(SyncBus, RcuReadPathIsFreeAndSyncChargesPerCpu)
{
    MachineConfig cfg; // numCpus = 4
    SyncTransport st(cfg, 2);
    EXPECT_EQ(st.access(1, 0, LockEvent::RcuReadEnter), 0u);
    EXPECT_EQ(st.access(1, 0, LockEvent::RcuReadExit), 0u);
    EXPECT_EQ(st.counts(0).uncachedOps, 0u);
    EXPECT_EQ(st.counts(0).cachedOps, 0u);
    // A grace period waits on every other CPU: numCpus - 1 ops under
    // both models.
    EXPECT_EQ(st.access(0, 0, LockEvent::RcuSync),
              Cycle(cfg.numCpus - 1) * cfg.syncBusOpCycles);
    EXPECT_EQ(st.counts(0).uncachedOps, cfg.numCpus - 1);
    EXPECT_EQ(st.counts(0).cachedOps, cfg.numCpus - 1);
}

TEST(SyncBus, RestoreRejectsPhantomSharerMask)
{
    MachineConfig cfg;
    cfg.numCpus = 2;
    SyncTransport st(cfg, 2);
    st.access(1, 0, LockEvent::AcquireSuccess);
    mpos::util::ByteWriter w;
    st.saveState(w);
    std::vector<uint8_t> img = w.take();
    // cachedAt masks follow the 4-byte count and 16 bytes of op
    // counters per lock; set a sharer bit beyond the 2-CPU machine.
    const size_t maskAt = 4 + 2 * 16;
    ASSERT_LT(maskAt, img.size());
    img[maskAt] |= 0x10; // bit 4
    SyncTransport fresh(cfg, 2);
    mpos::util::ByteReader r(img);
    try {
        fresh.restoreState(r);
        FAIL() << "phantom sharer mask was accepted";
    } catch (const mpos::util::SimError &e) {
        EXPECT_EQ(e.code(), mpos::util::ErrCode::SnapshotCorrupt);
    }
}

TEST(SyncBus, RestoreRejectsPhantomQnodeMask)
{
    MachineConfig cfg;
    cfg.numCpus = 2;
    SyncTransport st(cfg, 2);
    mpos::util::ByteWriter w;
    st.saveState(w);
    std::vector<uint8_t> img = w.take();
    // qnodeAt masks follow the cachedAt masks (8 bytes per lock).
    const size_t maskAt = 4 + 2 * 16 + 2 * 8;
    ASSERT_LT(maskAt, img.size());
    img[maskAt] |= 0x80; // bit 7 on a 2-CPU machine
    SyncTransport fresh(cfg, 2);
    mpos::util::ByteReader r(img);
    try {
        fresh.restoreState(r);
        FAIL() << "phantom qnode mask was accepted";
    } catch (const mpos::util::SimError &e) {
        EXPECT_EQ(e.code(), mpos::util::ErrCode::SnapshotCorrupt);
    }
}

TEST(SyncBus, RoundTripRestoresMasksAndCounters)
{
    MachineConfig cfg;
    cfg.cachedLockRmw = true;
    SyncTransport st(cfg, 2);
    st.access(0, 0, LockEvent::McsSwap);
    st.access(1, 0, LockEvent::McsEnqueue);
    st.access(1, 0, LockEvent::McsLocalPoll);
    mpos::util::ByteWriter w;
    st.saveState(w);
    SyncTransport fresh(cfg, 2);
    mpos::util::ByteReader r(w.bytes());
    fresh.restoreState(r);
    EXPECT_EQ(fresh.cachedAtMask(0), st.cachedAtMask(0));
    EXPECT_EQ(fresh.qnodeAtMask(0), st.qnodeAtMask(0));
    EXPECT_EQ(fresh.counts(0).uncachedOps, st.counts(0).uncachedOps);
    EXPECT_EQ(fresh.counts(0).cachedOps, st.counts(0).cachedOps);
    EXPECT_EQ(fresh.stallCycles(1), st.stallCycles(1));
}

TEST(SyncBus, SixtyFourCpuCachedMaskUsesHighBits)
{
    MachineConfig cfg;
    cfg.numCpus = 64;
    cfg.memBytes = 1024 * 1024; // keep the big machine's test cheap
    cfg.cachedLockRmw = true;
    SyncTransport st(cfg, 4);
    // CPU 63's fetch must set bit 63, not alias into the low word.
    st.access(63, 0, LockEvent::AcquireSuccess);
    EXPECT_EQ(st.cachedAtMask(0), uint64_t(1) << 63);
    // A spinner on CPU 32 joins the mask.
    st.access(32, 0, LockEvent::AcquireFail);
    EXPECT_EQ(st.cachedAtMask(0),
              (uint64_t(1) << 63) | (uint64_t(1) << 32));
    // Release by the owner invalidates every other cached copy.
    st.access(63, 0, LockEvent::Release);
    EXPECT_EQ(st.cachedAtMask(0), uint64_t(1) << 63);
}
