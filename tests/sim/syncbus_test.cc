/** @file Tests for the dual-protocol lock transport. */

#include <gtest/gtest.h>

#include "sim/syncbus.hh"

using namespace mpos::sim;

TEST(SyncBus, UncachedAcquireCostsProtocolOps)
{
    MachineConfig cfg; // cachedLockRmw = false
    SyncTransport st(cfg, 4);
    const Cycle c = st.access(0, 0, LockEvent::AcquireSuccess);
    EXPECT_EQ(c, Cycle(cfg.syncOpsPerAcquire) * cfg.syncBusOpCycles);
    EXPECT_EQ(st.counts(0).uncachedOps, cfg.syncOpsPerAcquire);
}

TEST(SyncBus, UncachedSpinAndReleaseCostOneOp)
{
    MachineConfig cfg;
    SyncTransport st(cfg, 4);
    EXPECT_EQ(st.access(0, 0, LockEvent::AcquireFail),
              cfg.syncBusOpCycles);
    EXPECT_EQ(st.access(0, 0, LockEvent::Release),
              cfg.syncBusOpCycles);
}

TEST(SyncBus, CachedReacquireByOwnerIsFree)
{
    MachineConfig cfg;
    cfg.cachedLockRmw = true;
    SyncTransport st(cfg, 4);
    // First acquire fetches the line.
    EXPECT_GT(st.access(0, 0, LockEvent::AcquireSuccess), 0u);
    EXPECT_EQ(st.access(0, 0, LockEvent::Release), 0u);
    // Undisturbed reacquire: pure cache hit (the paper's key point).
    EXPECT_EQ(st.access(0, 0, LockEvent::AcquireSuccess), 0u);
}

TEST(SyncBus, CachedHandoffCostsOneBusOp)
{
    MachineConfig cfg;
    cfg.cachedLockRmw = true;
    SyncTransport st(cfg, 4);
    st.access(0, 0, LockEvent::AcquireSuccess);
    st.access(0, 0, LockEvent::Release);
    EXPECT_EQ(st.access(1, 0, LockEvent::AcquireSuccess),
              cfg.busMissStall);
}

TEST(SyncBus, CachedSpinHitsAfterFirstPoll)
{
    MachineConfig cfg;
    cfg.cachedLockRmw = true;
    SyncTransport st(cfg, 4);
    st.access(0, 0, LockEvent::AcquireSuccess);
    EXPECT_EQ(st.access(1, 0, LockEvent::AcquireFail),
              cfg.busMissStall); // first poll fetches
    EXPECT_EQ(st.access(1, 0, LockEvent::AcquireFail), 0u); // spins hit
    // Release by owner invalidates the spinner's copy.
    EXPECT_EQ(st.access(0, 0, LockEvent::Release), cfg.busMissStall);
}

TEST(SyncBus, BothProtocolsCountedSimultaneously)
{
    MachineConfig cfg; // active: sync bus
    SyncTransport st(cfg, 4);
    st.access(0, 1, LockEvent::AcquireSuccess);
    st.access(0, 1, LockEvent::Release);
    st.access(0, 1, LockEvent::AcquireSuccess);
    const auto &c = st.counts(1);
    EXPECT_EQ(c.uncachedOps, 2 * cfg.syncOpsPerAcquire + 1);
    // Cached model: fetch, free release, free reacquire.
    EXPECT_EQ(c.cachedOps, 1u);
    EXPECT_GT(st.uncachedStallTotal(), st.cachedStallTotal());
}

TEST(SyncBus, PerCpuStallAccounting)
{
    MachineConfig cfg;
    SyncTransport st(cfg, 4);
    st.access(2, 0, LockEvent::AcquireSuccess);
    EXPECT_GT(st.stallCycles(2), 0u);
    EXPECT_EQ(st.stallCycles(1), 0u);
}

TEST(SyncBus, SumOpsRange)
{
    MachineConfig cfg;
    SyncTransport st(cfg, 8);
    st.access(0, 2, LockEvent::Release);
    st.access(0, 6, LockEvent::Release);
    EXPECT_EQ(st.sumOps(4).uncachedOps, 1u);
    EXPECT_EQ(st.sumOps(8).uncachedOps, 2u);
    EXPECT_EQ(st.sumOps(100).uncachedOps, 2u); // clamped
}

TEST(SyncBus, HighLocalityMeansFewCachedOps)
{
    MachineConfig cfg;
    SyncTransport st(cfg, 1);
    // 100 acquire/release pairs by the same CPU, undisturbed.
    for (int i = 0; i < 100; ++i) {
        st.access(0, 0, LockEvent::AcquireSuccess);
        st.access(0, 0, LockEvent::Release);
    }
    // Table 12's last column: caching slashes the bus operations.
    EXPECT_EQ(st.counts(0).cachedOps, 1u);
    EXPECT_EQ(st.counts(0).uncachedOps,
              100u * (cfg.syncOpsPerAcquire + 1));
}

TEST(SyncBus, SixtyFourCpuCachedMaskUsesHighBits)
{
    MachineConfig cfg;
    cfg.numCpus = 64;
    cfg.memBytes = 1024 * 1024; // keep the big machine's test cheap
    cfg.cachedLockRmw = true;
    SyncTransport st(cfg, 4);
    // CPU 63's fetch must set bit 63, not alias into the low word.
    st.access(63, 0, LockEvent::AcquireSuccess);
    EXPECT_EQ(st.cachedAtMask(0), uint64_t(1) << 63);
    // A spinner on CPU 32 joins the mask.
    st.access(32, 0, LockEvent::AcquireFail);
    EXPECT_EQ(st.cachedAtMask(0),
              (uint64_t(1) << 63) | (uint64_t(1) << 32));
    // Release by the owner invalidates every other cached copy.
    st.access(63, 0, LockEvent::Release);
    EXPECT_EQ(st.cachedAtMask(0), uint64_t(1) << 63);
}
