/** @file FaultPlan schedule and fault-injection campaign tests.
 *
 *  The injection layer's contract is determinism: every decision is
 *  drawn at construction from the seed, runtime firing is pure
 *  counting, and a whole campaign run -- including the diagnostics of
 *  the runs it kills -- replays byte-identically from the same seed.
 */

#include <gtest/gtest.h>

#include "kernel/kernel.hh"
#include "sim/check/fuzz.hh"
#include "sim/fault/plan.hh"
#include "sim/machine.hh"
#include "util/error.hh"

using namespace mpos;
using namespace mpos::sim;
using mpos::util::ErrCode;
using mpos::util::SimError;

TEST(FaultPlan, ScheduleIsDeterministic)
{
    for (uint64_t seed = 1; seed <= 32; ++seed) {
        FaultPlan a(seed, 400000);
        FaultPlan b(seed, 400000);
        EXPECT_EQ(a.slotExhaustAfter, b.slotExhaustAfter);
        EXPECT_EQ(a.shmExhaustAfter, b.shmExhaustAfter);
        EXPECT_EQ(a.userLockExhaustAfter, b.userLockExhaustAfter);
        EXPECT_EQ(a.perturbLockMask, b.perturbLockMask);
        EXPECT_EQ(a.lockHoldExtra, b.lockHoldExtra);
        EXPECT_EQ(a.truncateEvery, b.truncateEvery);
        EXPECT_EQ(a.truncateKeepPct, b.truncateKeepPct);
        EXPECT_EQ(a.syntheticTripAt, b.syntheticTripAt);
        EXPECT_EQ(a.describe(), b.describe());
    }
}

TEST(FaultPlan, AlwaysSchedulesSomeFault)
{
    // An all-quiet plan would make a fault campaign silently vacuous;
    // the constructor forces a synthetic trip when nothing else drew.
    for (uint64_t seed = 1; seed <= 64; ++seed) {
        FaultPlan p(seed, 400000);
        const bool active =
            p.slotExhaustAfter || p.shmExhaustAfter ||
            p.userLockExhaustAfter || p.perturbLockMask ||
            p.truncateEvery || p.syntheticTripAt;
        EXPECT_TRUE(active) << "seed " << seed;
    }
}

TEST(FaultPlan, TruncatedLenBoundedAndDeterministic)
{
    FaultPlan a(11, 400000);
    FaultPlan b(11, 400000);
    for (int i = 0; i < 200; ++i) {
        const uint64_t len = 1 + (i * 37) % 300;
        const uint64_t ka = a.truncatedLen(len);
        EXPECT_GE(ka, 1u);
        EXPECT_LE(ka, len);
        EXPECT_EQ(ka, b.truncatedLen(len));
    }
}

TEST(FaultPlan, FireCountersMatchSchedule)
{
    // Find a seed with slot exhaustion scheduled and check the Nth
    // call (exactly the Nth) fires.
    for (uint64_t seed = 1; seed < 200; ++seed) {
        FaultPlan p(seed, 400000);
        if (!p.slotExhaustAfter)
            continue;
        for (uint32_t i = 1; i < p.slotExhaustAfter; ++i)
            EXPECT_FALSE(p.fireSlotAlloc());
        EXPECT_TRUE(p.fireSlotAlloc());
        EXPECT_FALSE(p.fireSlotAlloc()); // one-shot
        EXPECT_GE(p.faultsFired(), 1u);
        return;
    }
    FAIL() << "no seed with slot exhaustion in 1..199";
}

TEST(FaultPlan, FirstTrippingSeedTrips)
{
    const uint64_t s = FaultPlan::firstTrippingSeed(1, 60000);
    FaultPlan p(s, 60000);
    EXPECT_GT(p.syntheticTripAt, 0u);
    EXPECT_LT(p.syntheticTripAt, 60000u);
    // Stable: same arguments, same answer.
    EXPECT_EQ(s, FaultPlan::firstTrippingSeed(1, 60000));
}

TEST(FaultPlan, KernelSlotExhaustionInjection)
{
    // Find a seed whose very first process-slot allocation fails.
    uint64_t seed = 0;
    for (uint64_t s = 1; s < 500; ++s) {
        if (FaultPlan(s, 400000).slotExhaustAfter == 1) {
            seed = s;
            break;
        }
    }
    ASSERT_NE(seed, 0u) << "no slotExhaustAfter==1 seed in 1..499";

    MachineConfig mcfg;
    mcfg.numCpus = 2;
    mcfg.faultSeed = seed;
    Machine m(mcfg, 128);
    ASSERT_NE(m.faults(), nullptr);
    kernel::KernelConfig kcfg;
    kcfg.layout.maxProcs = 16;
    kcfg.userPoolPages = 600;
    kernel::Kernel k(m, kcfg);
    const uint32_t img = k.registerImage("app", 32 * 1024);

    struct Noop : kernel::AppBehavior
    {
        void chunk(kernel::Process &, kernel::UserScript &s) override
        {
            s.think(32);
        }
    };
    try {
        k.spawn(std::make_unique<Noop>(), img, "victim");
        FAIL() << "injected slot exhaustion did not fire";
    } catch (const SimError &e) {
        EXPECT_EQ(e.code(), ErrCode::ResourceExhausted);
        EXPECT_NE(std::string(e.what()).find("fault injection"),
                  std::string::npos);
    }
}

TEST(FaultCampaign, DeterministicAcrossDoubleRun)
{
    FuzzOptions opt;
    opt.scriptLen = 400;
    opt.runCycles = 12000;
    const uint64_t first = FaultPlan::firstTrippingSeed(1, 12000);
    const FaultCampaignResult res =
        runFaultCampaign(first, 2, {1, 2}, opt);
    EXPECT_EQ(res.runs, 4u);
    EXPECT_GT(res.tripped, 0u); // the first seed is guaranteed to trip
    EXPECT_TRUE(res.ok());      // every record replayed identically
    for (const FaultRunRecord &r : res.records) {
        EXPECT_TRUE(r.deterministic);
        EXPECT_FALSE(r.schedule.empty());
        if (r.tripped) {
            EXPECT_EQ(r.errorCode, "watchdog-trip");
            EXPECT_FALSE(r.diagnostic.empty());
        }
    }
}
