/**
 * @file
 * mpos_fuzz: the differential fuzz driver.
 *
 * Sweeps a seed x CPU-count matrix through both simulation cores with
 * the invariant checkers on and compares monitor event streams and
 * final machine state bit for bit. Exit status 0 means every run
 * matched; 1 means at least one diverged, and each failure is printed
 * with its minimized script-prefix repro.
 *
 * With --faults the driver switches to the fault-injection campaign:
 * every seed gets a deterministic FaultPlan (truncated scripts,
 * stretched lock holds, a synthetic watchdog trip) and the property
 * checked is reproducibility -- the same seed must produce the same
 * fault schedule and, when the run dies, byte-identical diagnostics
 * across a double run.
 *
 * With --snapshot-at C the matrix instead checks the snapshot
 * differential: each run is cut at cycle C, serialized through the
 * snapshot container, restored into a fresh machine and continued --
 * and must still produce the uninterrupted run's exact event stream
 * and final state.
 *
 * With --corrupt N the driver switches to the corrupt-input campaign:
 * N seeded byte-mutations of a pristine snapshot image and a pristine
 * binary trace are decoded, and every one must either decode cleanly
 * or raise a typed SimError -- never crash (CI runs this mode under
 * ASan+UBSan). --emit-corrupt-corpus D regenerates the committed
 * corrupt-snapshot corpus under tests/golden/corrupt/.
 *
 * Usage: mpos_fuzz [--seeds N] [--first-seed S] [--cpus a,b,c]
 *                  [--protocol p,q] [--lock-proto p,q]
 *                  [--script-len N] [--cycles N]
 *                  [--sim-threads N] [--snapshot-at C] [--quiet]
 *                  [--faults] [--dump-dir D]
 *                  [--corrupt N] [--tmp-dir D]
 *                  [--emit-corrupt-corpus D]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/check/fuzz.hh"
#include "sim/snapshot/container.hh"
#include "sim/types.hh"

namespace
{

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --seeds N       seeds per CPU count (default 64)\n"
        "  --first-seed S  first seed (default 1)\n"
        "  --cpus a,b,c    CPU counts to sweep (default 1,2,4)\n"
        "  --protocol p,q  coherence protocols to sweep: any of\n"
        "                  mesi,msi,mi (default mesi)\n"
        "  --lock-proto p,q\n"
        "                  lock primitives to sweep: any of tas,"
        "ticket,mcs,\n"
        "                  futex,rcu (default tas)\n"
        "  --script-len N  script items per CPU (default 4000)\n"
        "  --cycles N      cycles per machine run (default 60000)\n"
        "  --sim-threads N three-way differential: also run the "
        "parallel\n"
        "                  epoch/barrier core with N host threads "
        "(default\n"
        "                  MPOS_SIM_THREADS if set, else 1 = off)\n"
        "  --snapshot-at C snapshot differential: cut every run at "
        "cycle C,\n"
        "                  save/restore through the snapshot container "
        "into a\n"
        "                  fresh machine, and require the identical "
        "event\n"
        "                  stream and final state (0 = off)\n"
        "  --quiet         only print the summary\n"
        "  --faults        run the fault-injection campaign instead "
        "of the\n"
        "                  differential matrix\n"
        "  --dump-dir D    (--faults) write each run's schedule and "
        "diagnostic\n"
        "                  to D/fault_seed<S>_cpus<N>.txt\n"
        "  --corrupt N     corrupt-input campaign: decode N seeded "
        "byte\n"
        "                  mutations of a snapshot image and a binary "
        "trace;\n"
        "                  each must decode or raise a typed SimError\n"
        "  --tmp-dir D     (--corrupt) scratch directory for trace "
        "files\n"
        "                  (default .)\n"
        "  --emit-corrupt-corpus D\n"
        "                  regenerate the committed corrupt-snapshot "
        "corpus\n"
        "                  (truncated/flipped-crc/oversize-len/"
        "bad-version/\n"
        "                  garbage-section)\n"
        "                  into D and exit\n",
        argv0);
}

bool
writeCorpusFile(const std::string &path,
                const std::vector<uint8_t> &bytes)
{
    FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    const bool ok =
        std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
    return (std::fclose(f) == 0) && ok;
}

/**
 * Write the five committed corrupt snapshots. Layout knowledge used
 * here (version u32 at offset 8, first section length u32 at offset
 * 24 + 4, trailing 8-byte FNV-1a) mirrors snapshot::pack; the two
 * variants that must get past the outer checksum to exercise the
 * framing validators have it recomputed. The fifth image is the
 * un-mutated base itself: valid framing around a garbage Machine
 * section, which must be rejected by the *state* decoders
 * (Machine::restoreState), not the container.
 */
int
emitCorruptCorpus(const std::string &dir)
{
    using mpos::sim::snapshot::fnv1a;
    namespace snapshot = mpos::sim::snapshot;

    // Every corpus file corrupts the container *framing*, which never
    // looks inside a section, so a small deterministic stand-in
    // payload keeps the committed files tiny while exercising exactly
    // the same validators a 600 KB machine image would.
    std::vector<uint8_t> payload(256);
    for (size_t i = 0; i < payload.size(); ++i)
        payload[i] = uint8_t(i * 7 + 3);
    std::vector<std::pair<snapshot::Section, std::vector<uint8_t>>>
        sections;
    sections.emplace_back(snapshot::Section::Machine, payload);
    const std::vector<uint8_t> base =
        snapshot::pack(0x4d50f05c0de42ULL, std::move(sections));
    if (base.size() < 40) {
        std::fprintf(stderr, "base image implausibly small\n");
        return 1;
    }
    const auto fixup = [](std::vector<uint8_t> &img) {
        const uint64_t sum = fnv1a(img.data(), img.size() - 8);
        for (unsigned i = 0; i < 8; ++i)
            img[img.size() - 8 + i] = uint8_t(sum >> (8 * i));
    };

    std::vector<uint8_t> truncated(base.begin(),
                                   base.begin() + base.size() / 2);

    std::vector<uint8_t> flippedCrc = base;
    flippedCrc.back() ^= 0xff;

    std::vector<uint8_t> oversizeLen = base;
    for (unsigned i = 0; i < 4; ++i) // first section's length field
        oversizeLen[28 + i] = uint8_t(0x7fffffffu >> (8 * i));
    fixup(oversizeLen);

    std::vector<uint8_t> badVersion = base;
    for (unsigned i = 0; i < 4; ++i) // format version field
        badVersion[8 + i] = uint8_t(0xdeadu >> (8 * i));
    fixup(badVersion);

    const std::pair<const char *, const std::vector<uint8_t> *>
        files[] = {
            {"truncated.snap", &truncated},
            {"flipped_crc.snap", &flippedCrc},
            {"oversize_len.snap", &oversizeLen},
            {"bad_version.snap", &badVersion},
            {"garbage_section.snap", &base},
        };
    for (const auto &[name, bytes] : files) {
        const std::string path = dir + "/" + name;
        if (!writeCorpusFile(path, *bytes)) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
            return 1;
        }
        std::printf("wrote %s (%zu bytes)\n", path.c_str(),
                    bytes->size());
    }
    return 0;
}

/** Run the --faults campaign; returns the process exit code. */
int
faultCampaignMain(uint64_t first_seed, uint32_t num_seeds,
                  const std::vector<uint32_t> &cpus,
                  const mpos::sim::FuzzOptions &opt, bool quiet,
                  const std::string &dump_dir)
{
    using mpos::sim::FaultRunRecord;

    const auto progress = [&](const FaultRunRecord &r) {
        if (!r.deterministic) {
            std::fprintf(stderr,
                         "[fuzz] NONDETERMINISTIC seed=%llu cpus=%u\n",
                         (unsigned long long)r.seed, r.numCpus);
        } else if (!quiet) {
            std::fprintf(stderr,
                         "[fuzz] seed=%llu cpus=%u: %llu fault(s) "
                         "fired%s%s\n",
                         (unsigned long long)r.seed, r.numCpus,
                         (unsigned long long)r.faultsFired,
                         r.tripped ? ", died: " : "",
                         r.tripped ? r.errorCode.c_str() : "");
        }
        if (!dump_dir.empty()) {
            const std::string path =
                dump_dir + "/fault_seed" + std::to_string(r.seed) +
                "_cpus" + std::to_string(r.numCpus) + ".txt";
            if (FILE *f = std::fopen(path.c_str(), "w")) {
                std::fprintf(f, "%s", r.schedule.c_str());
                if (r.tripped) {
                    std::fprintf(f, "error: %s\n%s\n",
                                 r.errorCode.c_str(),
                                 r.diagnostic.c_str());
                }
                std::fclose(f);
            } else {
                std::fprintf(stderr, "[fuzz] cannot write %s\n",
                             path.c_str());
            }
        }
    };

    const mpos::sim::FaultCampaignResult res =
        mpos::sim::runFaultCampaign(first_seed, num_seeds, cpus, opt,
                                    progress);

    uint32_t nondet = 0;
    for (const FaultRunRecord &r : res.records)
        nondet += r.deterministic ? 0 : 1;
    std::printf("mpos_fuzz --faults: %u runs, %u tripped, %llu "
                "fault(s) fired, %u non-deterministic\n",
                res.runs, res.tripped,
                (unsigned long long)res.faultsFired, nondet);
    return res.ok() ? 0 : 1;
}

std::vector<uint32_t>
parseCpuList(const char *s)
{
    std::vector<uint32_t> cpus;
    for (const char *p = s; *p;) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(p, &end, 10);
        if (end == p || v == 0 || v > 64) {
            std::fprintf(stderr, "bad CPU list '%s'\n", s);
            std::exit(2);
        }
        cpus.push_back(uint32_t(v));
        p = (*end == ',') ? end + 1 : end;
    }
    return cpus;
}

std::vector<mpos::sim::Protocol>
parseProtocolList(const char *s)
{
    std::vector<mpos::sim::Protocol> protos;
    for (const char *p = s; *p;) {
        const char *end = p;
        while (*end && *end != ',')
            ++end;
        const std::string name(p, end);
        mpos::sim::Protocol proto;
        if (!mpos::sim::parseProtocol(name.c_str(), proto)) {
            std::fprintf(stderr, "bad protocol list '%s'\n", s);
            std::exit(2);
        }
        protos.push_back(proto);
        p = *end ? end + 1 : end;
    }
    if (protos.empty()) {
        std::fprintf(stderr, "bad protocol list '%s'\n", s);
        std::exit(2);
    }
    return protos;
}

std::vector<mpos::sim::LockPolicy>
parseLockPolicyList(const char *s)
{
    std::vector<mpos::sim::LockPolicy> policies;
    for (const char *p = s; *p;) {
        const char *end = p;
        while (*end && *end != ',')
            ++end;
        const std::string name(p, end);
        mpos::sim::LockPolicy policy;
        if (!mpos::sim::parseLockPolicy(name.c_str(), policy)) {
            std::fprintf(stderr, "bad lock-primitive list '%s'\n", s);
            std::exit(2);
        }
        policies.push_back(policy);
        p = *end ? end + 1 : end;
    }
    if (policies.empty()) {
        std::fprintf(stderr, "bad lock-primitive list '%s'\n", s);
        std::exit(2);
    }
    return policies;
}

} // namespace

int
main(int argc, char **argv)
{
    uint32_t numSeeds = 64;
    uint64_t firstSeed = 1;
    std::vector<uint32_t> cpus = {1, 2, 4};
    std::vector<mpos::sim::Protocol> protos = {
        mpos::sim::Protocol::Mesi};
    std::vector<mpos::sim::LockPolicy> lockPolicies = {
        mpos::sim::LockPolicy::TestAndSet};
    mpos::sim::FuzzOptions opt;
    // MPOS_SIM_THREADS reaches every constructed Machine anyway (the
    // env override beats the config field), so honor it here too and
    // get the third parallel run instead of a silent serial fallback.
    if (const uint32_t forced = mpos::sim::simThreadsForced())
        opt.simThreads = forced;
    mpos::sim::Cycle snapshotAt = 0;
    bool quiet = false;
    bool faults = false;
    std::string dumpDir;
    uint32_t corrupt = 0;
    std::string tmpDir = ".";
    std::string corpusDir;

    for (int i = 1; i < argc; ++i) {
        const auto arg = [&](const char *name) -> const char * {
            if (std::strcmp(argv[i], name) != 0)
                return nullptr;
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", name);
                std::exit(2);
            }
            return argv[++i];
        };
        if (const char *v = arg("--seeds")) {
            numSeeds = uint32_t(std::strtoul(v, nullptr, 10));
        } else if (const char *v = arg("--first-seed")) {
            firstSeed = std::strtoull(v, nullptr, 10);
        } else if (const char *v = arg("--cpus")) {
            cpus = parseCpuList(v);
        } else if (const char *v = arg("--protocol")) {
            protos = parseProtocolList(v);
        } else if (const char *v = arg("--lock-proto")) {
            lockPolicies = parseLockPolicyList(v);
        } else if (const char *v = arg("--script-len")) {
            opt.scriptLen = uint32_t(std::strtoul(v, nullptr, 10));
        } else if (const char *v = arg("--cycles")) {
            opt.runCycles = std::strtoull(v, nullptr, 10);
        } else if (const char *v = arg("--sim-threads")) {
            opt.simThreads = uint32_t(std::strtoul(v, nullptr, 10));
            if (!opt.simThreads)
                opt.simThreads = 1;
        } else if (const char *v = arg("--snapshot-at")) {
            snapshotAt = std::strtoull(v, nullptr, 10);
        } else if (const char *v = arg("--dump-dir")) {
            dumpDir = v;
        } else if (const char *v = arg("--corrupt")) {
            corrupt = uint32_t(std::strtoul(v, nullptr, 10));
        } else if (const char *v = arg("--tmp-dir")) {
            tmpDir = v;
        } else if (const char *v = arg("--emit-corrupt-corpus")) {
            corpusDir = v;
        } else if (!std::strcmp(argv[i], "--quiet")) {
            quiet = true;
        } else if (!std::strcmp(argv[i], "--faults")) {
            faults = true;
        } else {
            usage(argv[0]);
            return 2;
        }
    }

    if (!corpusDir.empty())
        return emitCorruptCorpus(corpusDir);

    if (corrupt) {
        // The corrupt campaign decodes mutated images; the machine
        // that builds the pristine ones runs the first protocol,
        // lock primitive and CPU count.
        opt.protocol = protos.front();
        opt.lockPolicy = lockPolicies.front();
        opt.numCpus = cpus.front();
        const auto progress = [&](uint32_t done, uint32_t total) {
            if (!quiet && done % 64 == 0)
                std::fprintf(stderr, "[fuzz] %u/%u mutations decoded\n",
                             done, total);
        };
        const mpos::sim::CorruptCampaignResult res =
            mpos::sim::runCorruptCampaign(firstSeed, corrupt, opt,
                                          tmpDir, progress);
        std::printf("mpos_fuzz --corrupt: %u mutated images, %u "
                    "rejected with a typed error, %u decoded, %zu "
                    "contract violation(s)\n",
                    res.runs, res.rejected, res.accepted,
                    res.failures.size());
        for (const std::string &f : res.failures)
            std::printf("  %s\n", f.c_str());
        return res.ok() ? 0 : 1;
    }

    if (faults) {
        // The fault campaign checks failure reproducibility, not the
        // protocol differential; it runs under the first protocol
        // and lock primitive.
        opt.protocol = protos.front();
        opt.lockPolicy = lockPolicies.front();
        return faultCampaignMain(firstSeed, numSeeds, cpus, opt,
                                 quiet, dumpDir);
    }

    uint32_t done = 0;
    const uint32_t total = numSeeds * uint32_t(cpus.size()) *
                           uint32_t(protos.size()) *
                           uint32_t(lockPolicies.size());

    mpos::sim::FuzzMatrixResult res;
    std::vector<const char *> failProto;  // parallel to res.failures
    std::vector<const char *> failPolicy; // parallel to res.failures
    for (const mpos::sim::Protocol proto : protos) {
        opt.protocol = proto;
        const char *pname = mpos::sim::protocolName(proto);
        for (const mpos::sim::LockPolicy policy : lockPolicies) {
            opt.lockPolicy = policy;
            const char *lname = mpos::sim::lockPolicyName(policy);
            const auto progress =
                [&](uint64_t seed, uint32_t ncpus,
                    const mpos::sim::FuzzOutcome &out) {
                    ++done;
                    if (!out.ok) {
                        std::fprintf(
                            stderr,
                            "[fuzz] FAIL seed=%llu cpus=%u "
                            "protocol=%s lock-proto=%s: %s\n",
                            (unsigned long long)seed, ncpus, pname,
                            lname, out.detail.c_str());
                    } else if (!quiet && done % 16 == 0) {
                        std::fprintf(stderr, "[fuzz] %u/%u runs ok\n",
                                     done, total);
                    }
                };
            const mpos::sim::FuzzMatrixResult sub =
                snapshotAt
                    ? mpos::sim::runSnapshotMatrix(firstSeed, numSeeds,
                                                   cpus, opt,
                                                   snapshotAt,
                                                   progress)
                    : mpos::sim::runFuzzMatrix(firstSeed, numSeeds,
                                               cpus, opt, progress);
            res.runs += sub.runs;
            res.eventsCompared += sub.eventsCompared;
            res.checksPerformed += sub.checksPerformed;
            for (const mpos::sim::FuzzFailure &f : sub.failures) {
                res.failures.push_back(f);
                failProto.push_back(pname);
                failPolicy.push_back(lname);
            }
        }
    }

    std::printf("mpos_fuzz%s: %u runs, %llu monitor events compared, "
                "%llu invariant checks, %zu failure(s)\n",
                snapshotAt ? " --snapshot-at" : "", res.runs,
                (unsigned long long)res.eventsCompared,
                (unsigned long long)res.checksPerformed,
                res.failures.size());
    for (size_t i = 0; i < res.failures.size(); ++i) {
        const mpos::sim::FuzzFailure &f = res.failures[i];
        std::string extra = std::string(" --protocol ") + failProto[i] +
                            " --lock-proto " + failPolicy[i];
        if (opt.simThreads > 1)
            extra += " --sim-threads " + std::to_string(opt.simThreads);
        if (snapshotAt) {
            std::printf("  seed %llu cpus %u protocol %s lock-proto "
                        "%s:\n    repro: "
                        "mpos_fuzz --seeds 1 --first-seed %llu "
                        "--cpus %u --snapshot-at %llu%s\n    %s\n",
                        (unsigned long long)f.seed, f.numCpus,
                        failProto[i], failPolicy[i],
                        (unsigned long long)f.seed, f.numCpus,
                        (unsigned long long)snapshotAt, extra.c_str(),
                        f.detail.c_str());
            continue;
        }
        std::printf("  seed %llu cpus %u protocol %s lock-proto %s: "
                    "minimal failing "
                    "prefix %u items\n    repro: mpos_fuzz --seeds 1 "
                    "--first-seed %llu --cpus %u --script-len %u%s\n"
                    "    %s\n",
                    (unsigned long long)f.seed, f.numCpus,
                    failProto[i], failPolicy[i], f.minimalPrefix,
                    (unsigned long long)f.seed, f.numCpus,
                    f.minimalPrefix, extra.c_str(), f.detail.c_str());
    }
    return res.ok() ? 0 : 1;
}
