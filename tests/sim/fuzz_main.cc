/**
 * @file
 * mpos_fuzz: the differential fuzz driver.
 *
 * Sweeps a seed x CPU-count matrix through both simulation cores with
 * the invariant checkers on and compares monitor event streams and
 * final machine state bit for bit. Exit status 0 means every run
 * matched; 1 means at least one diverged, and each failure is printed
 * with its minimized script-prefix repro.
 *
 * Usage: mpos_fuzz [--seeds N] [--first-seed S] [--cpus a,b,c]
 *                  [--script-len N] [--cycles N] [--quiet]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/check/fuzz.hh"

namespace
{

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --seeds N       seeds per CPU count (default 64)\n"
        "  --first-seed S  first seed (default 1)\n"
        "  --cpus a,b,c    CPU counts to sweep (default 1,2,4)\n"
        "  --script-len N  script items per CPU (default 4000)\n"
        "  --cycles N      cycles per machine run (default 60000)\n"
        "  --quiet         only print the summary\n",
        argv0);
}

std::vector<uint32_t>
parseCpuList(const char *s)
{
    std::vector<uint32_t> cpus;
    for (const char *p = s; *p;) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(p, &end, 10);
        if (end == p || v == 0 || v > 8) {
            std::fprintf(stderr, "bad CPU list '%s'\n", s);
            std::exit(2);
        }
        cpus.push_back(uint32_t(v));
        p = (*end == ',') ? end + 1 : end;
    }
    return cpus;
}

} // namespace

int
main(int argc, char **argv)
{
    uint32_t numSeeds = 64;
    uint64_t firstSeed = 1;
    std::vector<uint32_t> cpus = {1, 2, 4};
    mpos::sim::FuzzOptions opt;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const auto arg = [&](const char *name) -> const char * {
            if (std::strcmp(argv[i], name) != 0)
                return nullptr;
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", name);
                std::exit(2);
            }
            return argv[++i];
        };
        if (const char *v = arg("--seeds")) {
            numSeeds = uint32_t(std::strtoul(v, nullptr, 10));
        } else if (const char *v = arg("--first-seed")) {
            firstSeed = std::strtoull(v, nullptr, 10);
        } else if (const char *v = arg("--cpus")) {
            cpus = parseCpuList(v);
        } else if (const char *v = arg("--script-len")) {
            opt.scriptLen = uint32_t(std::strtoul(v, nullptr, 10));
        } else if (const char *v = arg("--cycles")) {
            opt.runCycles = std::strtoull(v, nullptr, 10);
        } else if (!std::strcmp(argv[i], "--quiet")) {
            quiet = true;
        } else {
            usage(argv[0]);
            return 2;
        }
    }

    uint32_t done = 0;
    const uint32_t total = numSeeds * uint32_t(cpus.size());
    const auto progress = [&](uint64_t seed, uint32_t ncpus,
                              const mpos::sim::FuzzOutcome &out) {
        ++done;
        if (!out.ok) {
            std::fprintf(stderr,
                         "[fuzz] FAIL seed=%llu cpus=%u: %s\n",
                         (unsigned long long)seed, ncpus,
                         out.detail.c_str());
        } else if (!quiet && done % 16 == 0) {
            std::fprintf(stderr, "[fuzz] %u/%u runs ok\n", done,
                         total);
        }
    };

    const mpos::sim::FuzzMatrixResult res = mpos::sim::runFuzzMatrix(
        firstSeed, numSeeds, cpus, opt, progress);

    std::printf("mpos_fuzz: %u runs, %llu monitor events compared, "
                "%llu invariant checks, %zu failure(s)\n",
                res.runs, (unsigned long long)res.eventsCompared,
                (unsigned long long)res.checksPerformed,
                res.failures.size());
    for (const mpos::sim::FuzzFailure &f : res.failures) {
        std::printf("  seed %llu cpus %u: minimal failing prefix %u "
                    "items\n    repro: mpos_fuzz --seeds 1 "
                    "--first-seed %llu --cpus %u --script-len %u\n"
                    "    %s\n",
                    (unsigned long long)f.seed, f.numCpus,
                    f.minimalPrefix, (unsigned long long)f.seed,
                    f.numCpus, f.minimalPrefix, f.detail.c_str());
    }
    return res.ok() ? 0 : 1;
}
