#!/usr/bin/env bash
# Kill-and-resume identity: a journaled sweep killed at an injected
# crash point (MPOS_CRASH) and resumed with --resume must produce a
# results JSON and golden analysis outputs byte-identical to an
# uninterrupted run. Crash points cover a snapshot-cache write torn
# mid-file, a journal frame torn mid-append, the windows just before
# and after a JobEnd lands, and the window after an analysis ran but
# (possibly) before its record is durable.
#
# Usage: crash_resume.sh <mpos_bench> [point-prefix]
#   point-prefix (optional) restricts the crash points to those whose
#   name starts with it ("journal", "snapshot", "analysis"); CI uses
#   it to split the matrix across jobs. The dry-run and
#   completed-journal checks always run.

set -u

# Every case cd's into its own scratch directory, so resolve a
# relative bench path (as CI passes) up front.
BENCH="$(cd "$(dirname "$1")" && pwd)/$(basename "$1")"
ONLY="${2:-}"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/mpos_crash_resume.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

# Pinned settings: small deterministic runs, three analyses spanning
# plain tables, a standard-run consumer and a resim sweep.
export MPOS_CYCLES=60000 MPOS_WARMUP=30000 MPOS_SEED=7
FLAGS="--smoke --jobs 2 --only table01_workloads \
       --only fig02_os_operations --only fig04_imiss_classes"

# Every case runs in its own directory with identical relative paths
# (jd/snap/gold/out.json) so path-bearing report fields compare equal.
mkdir "$WORK/ref"
(cd "$WORK/ref" && "$BENCH" $FLAGS --journal jd --snapshot-dir snap \
     --golden-dir gold --json out.json) >/dev/null 2>&1
rc=$?
if [ $rc -ne 0 ]; then
    echo "reference run failed (exit $rc)"
    exit 1
fi

fail=0
POINTS="journal.pre-append:1 journal.post-append:1 \
        journal.mid-append:3 snapshot.mid-write:1 \
        analysis.post-record:2"
if [ -n "$ONLY" ]; then
    sel=""
    for P in $POINTS; do
        case "$P" in
            "$ONLY"*) sel="$sel $P" ;;
        esac
    done
    POINTS="$sel"
fi
for P in $POINTS; do
    dir="$WORK/case_$(echo "$P" | tr ':.' '__')"
    mkdir "$dir"
    (cd "$dir" && MPOS_CRASH="$P" "$BENCH" $FLAGS --journal jd \
         --snapshot-dir snap --golden-dir gold --json out.json) \
        >/dev/null 2>&1
    rc=$?
    if [ $rc -ne 137 ]; then
        echo "$P: crash run exited $rc, expected 137"
        fail=1
        continue
    fi
    (cd "$dir" && "$BENCH" $FLAGS --resume --journal jd \
         --snapshot-dir snap --golden-dir gold --json out.json) \
        >/dev/null 2>&1
    rc=$?
    if [ $rc -ne 0 ]; then
        echo "$P: resume exited $rc"
        fail=1
        continue
    fi
    if ! cmp -s "$dir/out.json" "$WORK/ref/out.json"; then
        echo "$P: results JSON differs from the uninterrupted run"
        diff "$dir/out.json" "$WORK/ref/out.json" | head -10
        fail=1
        continue
    fi
    if ! diff -r "$dir/gold" "$WORK/ref/gold" >/dev/null 2>&1; then
        echo "$P: golden analysis outputs differ"
        diff -r "$dir/gold" "$WORK/ref/gold" | head -10
        fail=1
        continue
    fi
    echo "$P: crash + resume byte-identical"
done

# --dry-run: the validated JSON plan, and nothing simulated.
plan="$WORK/plan.json"
"$BENCH" $FLAGS --dry-run >"$plan" 2>/dev/null
rc=$?
if [ $rc -ne 0 ]; then
    echo "--dry-run exited $rc"
    fail=1
elif ! grep -q '"dry_run": true' "$plan" ||
     ! grep -q '"name": "std/Pmake"' "$plan" ||
     ! grep -q '"config_hash"' "$plan"; then
    echo "--dry-run plan is missing expected fields:"
    head -3 "$plan"
    fail=1
else
    echo "--dry-run: plan emitted"
fi

# Resuming a finished journal re-runs nothing and stays identical.
(cd "$WORK/ref" && "$BENCH" $FLAGS --resume --journal jd \
     --snapshot-dir snap --golden-dir gold --json out2.json) \
    >/dev/null 2>&1
rc=$?
if [ $rc -ne 0 ]; then
    echo "second resume exited $rc"
    fail=1
elif ! cmp -s "$WORK/ref/out.json" "$WORK/ref/out2.json"; then
    echo "resuming a completed sweep changed the results JSON"
    fail=1
else
    echo "completed-journal resume: byte-identical, nothing re-run"
fi

exit $fail
