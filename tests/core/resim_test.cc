/**
 * @file
 * Unit tests for the Figure 6 I-cache re-simulation: recording filters
 * (only instruction misses enter the stream), replay through bigger
 * caches, flush handling, and the one-pass simulateDirectPair
 * optimization, which must equal two independent simulate() replays.
 */

#include <gtest/gtest.h>

#include "core/resim.hh"

using namespace mpos;
using core::ClassifiedMiss;
using core::ICacheResim;
using core::MissClass;
using core::ResimPairResult;
using core::ResimResult;
using sim::Addr;
using sim::BusOp;
using sim::CacheKind;
using sim::CpuId;
using sim::ExecMode;
using sim::OsOp;

namespace
{

constexpr uint32_t lineBytes = 16;

ClassifiedMiss
imiss(CpuId cpu, Addr line, bool os)
{
    ClassifiedMiss m;
    m.rec.cycle = 0;
    m.rec.cpu = cpu;
    m.rec.lineAddr = line;
    m.rec.op = BusOp::Read;
    m.rec.cache = CacheKind::Instr;
    m.rec.ctx.mode = os ? ExecMode::Kernel : ExecMode::User;
    m.rec.ctx.op = os ? OsOp::IoSyscall : OsOp::None;
    m.cls = MissClass::Cold;
    return m;
}

ClassifiedMiss
dmiss(CpuId cpu, Addr line)
{
    ClassifiedMiss m = imiss(cpu, line, false);
    m.rec.cache = CacheKind::Data;
    return m;
}

void
expectSame(const ResimResult &a, const ResimResult &b)
{
    EXPECT_EQ(a.osMisses, b.osMisses);
    EXPECT_EQ(a.appMisses, b.appMisses);
    EXPECT_DOUBLE_EQ(a.relativeOsMissRate, b.relativeOsMissRate);
}

} // namespace

TEST(ICacheResim, RecordsOnlyInstructionMisses)
{
    ICacheResim rs(2, lineBytes);
    rs.onMiss(imiss(0, 0x100, true));
    rs.onMiss(dmiss(0, 0x200)); // data miss: filtered out
    rs.onMiss(imiss(1, 0x300, false));
    EXPECT_EQ(rs.recordedEvents(), 2u);
    EXPECT_EQ(rs.baselineOsMisses(), 1u);

    rs.clear();
    EXPECT_EQ(rs.recordedEvents(), 0u);
    EXPECT_EQ(rs.baselineOsMisses(), 0u);
}

TEST(ICacheResim, BiggerCacheAbsorbsConflictMisses)
{
    // Two lines that conflict in a 2-line direct-mapped cache but
    // coexist in a 4-line one; each referenced twice, alternating.
    ICacheResim rs(1, lineBytes);
    const Addr a = 0x000, b = 2 * lineBytes;
    for (int i = 0; i < 4; ++i)
        rs.onMiss(imiss(0, i % 2 ? b : a, true));

    const ResimResult small = rs.simulate(2 * lineBytes, 1);
    EXPECT_EQ(small.osMisses, 4u); // a and b keep displacing each other
    const ResimResult big = rs.simulate(4 * lineBytes, 1);
    EXPECT_EQ(big.osMisses, 2u); // cold misses only
    EXPECT_DOUBLE_EQ(big.relativeOsMissRate, 0.5);

    // Associativity fixes the conflict at the small size too.
    const ResimResult assoc = rs.simulate(2 * lineBytes, 2);
    EXPECT_EQ(assoc.osMisses, 2u);
}

TEST(ICacheResim, FlushEventsOnlyCountWhenApplied)
{
    // One line, touched, fully flushed, touched again.
    ICacheResim rs(1, lineBytes);
    rs.onMiss(imiss(0, 0x40, true));
    rs.flushPage(0, 0, 0); // page_bytes 0 = full-cache flush
    rs.onMiss(imiss(0, 0x40, true));

    const ResimResult with = rs.simulate(8 * lineBytes, 1, true);
    EXPECT_EQ(with.osMisses, 2u);
    const ResimResult without = rs.simulate(8 * lineBytes, 1, false);
    EXPECT_EQ(without.osMisses, 1u);
}

TEST(ICacheResim, RangedFlushInvalidatesOnlyTheRange)
{
    ICacheResim rs(1, lineBytes);
    const Addr inPage = 0x000, outside = 0x1000;
    rs.onMiss(imiss(0, inPage, true));
    rs.onMiss(imiss(0, outside, true));
    rs.flushPage(0, 0, 256); // 16 lines starting at 0
    rs.onMiss(imiss(0, inPage, true));  // re-miss: was flushed
    rs.onMiss(imiss(0, outside, true)); // hit: outside the range

    const ResimResult r = rs.simulate(1024 * 1024, 1, true);
    EXPECT_EQ(r.osMisses, 3u);
}

TEST(ICacheResim, DirectPairMatchesTwoIndependentReplays)
{
    // A busy multi-CPU stream with OS and app misses, ranged and full
    // flushes: the fused one-pass replay must be bit-identical to the
    // two plain replays it replaces.
    ICacheResim rs(4, lineBytes);
    uint64_t x = 12345;
    for (int i = 0; i < 4000; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        const CpuId cpu = CpuId((x >> 33) % 4);
        const Addr line = ((x >> 17) % 512) * lineBytes;
        if ((x >> 60) == 0) {
            // Occasional flush; 1 in 4 of them full-cache.
            rs.flushPage(cpu, line, (x >> 55) % 4 ? 256 : 0);
        } else {
            rs.onMiss(imiss(cpu, line, (x & 1) != 0));
        }
    }
    ASSERT_GT(rs.recordedEvents(), 0u);
    ASSERT_GT(rs.baselineOsMisses(), 0u);

    for (uint64_t kb : {1, 4, 16}) {
        const uint64_t bytes = kb * 1024;
        const ResimPairResult pair = rs.simulateDirectPair(bytes);
        expectSame(pair.withInval, rs.simulate(bytes, 1, true));
        expectSame(pair.noInval, rs.simulate(bytes, 1, false));
    }
}
