/** @file End-to-end experiments asserting the paper's shape claims.
 *
 *  These run shortened measurements (a few million cycles), so the
 *  assertions are deliberately loose envelopes around the paper's
 *  numbers; the bench binaries reproduce the tables at full length.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/migration.hh"

using namespace mpos;
using namespace mpos::core;
using workload::WorkloadKind;

namespace
{

std::unique_ptr<Experiment>
quickRun(WorkloadKind kind, sim::Cycle cycles = 8000000,
         bool resim = false)
{
    ExperimentConfig cfg;
    cfg.kind = kind;
    cfg.warmupCycles = 4000000;
    cfg.measureCycles = cycles;
    cfg.collectResim = resim;
    auto e = std::make_unique<Experiment>(cfg);
    e->run();
    return e;
}

} // namespace

TEST(Experiment, PmakeShape)
{
    auto e = quickRun(WorkloadKind::Pmake);
    const auto t1 = e->table1();
    const auto &mc = e->misses();

    // The headline claims, as generous envelopes.
    EXPECT_GT(t1.sysPct, 15.0);  // OS is a large share of time
    EXPECT_LT(t1.sysPct, 60.0);
    EXPECT_GT(t1.osMissFracPct, 25.0);
    EXPECT_GT(t1.osMissStallPct, 10.0);
    EXPECT_LT(t1.osMissStallPct, 40.0);
    // OS-induced app misses add to the OS-only stall.
    EXPECT_GT(t1.osPlusInducedStallPct, t1.osMissStallPct);

    // Instruction fetches are a major source of OS misses (40-65%).
    const double ifrac =
        100.0 * double(mc.osITotal()) / double(mc.osTotal());
    EXPECT_GT(ifrac, 30.0);
    EXPECT_LT(ifrac, 75.0);

    // Classification is total: nothing unknown.
    EXPECT_EQ(mc.osI[unsigned(MissClass::Unknown)], 0u);
    EXPECT_EQ(mc.osD[unsigned(MissClass::Unknown)], 0u);
    EXPECT_EQ(mc.appI[unsigned(MissClass::Unknown)], 0u);
    EXPECT_EQ(mc.appD[unsigned(MissClass::Unknown)], 0u);
}

TEST(Experiment, PmakeSharingIsLargestDataClass)
{
    auto e = quickRun(WorkloadKind::Pmake, 12000000);
    const auto &mc = e->misses();
    const uint64_t sharing = mc.osD[unsigned(MissClass::Sharing)];
    EXPECT_GT(sharing, mc.osD[unsigned(MissClass::Dispap)]);
    EXPECT_GT(sharing, 0u);
}

TEST(Experiment, PmakeBlockOpsAreMajorDataSource)
{
    auto e = quickRun(WorkloadKind::Pmake, 12000000);
    const auto bo = e->blockOpReport();
    // Paper Table 6: 61% of OS data misses in Pmake; generous band.
    EXPECT_GT(bo.totalPctOfOsD, 25.0);
    EXPECT_GT(bo.copyMisses, 0u);
    EXPECT_GT(bo.clearMisses, 0u);
}

TEST(Experiment, PmakeBlockSizeClasses)
{
    auto e = quickRun(WorkloadKind::Pmake, 12000000);
    const auto ops = e->blockOps();
    const auto copies = blockSizes(ops, kernel::BlockKind::Copy);
    const auto clears = blockSizes(ops, kernel::BlockKind::Clear);
    EXPECT_GT(copies.invocations, 0u);
    EXPECT_GT(clears.invocations, 0u);
    // Paper Table 7: ~70% of clears are full pages; ~half of copies
    // are page-sized or regular fragments.
    EXPECT_GT(clears.fullPagePct, 40.0);
    EXPECT_GT(copies.regularFragmentPct + copies.fullPagePct, 25.0);
    EXPECT_GT(copies.irregularPct, 10.0);
}

TEST(Experiment, MultpgmSginapDominatesOperations)
{
    auto e = quickRun(WorkloadKind::Multpgm, 15000000);
    const uint64_t sginap = e->osOpCount(sim::OsOp::Sginap);
    // Figure 2: sginap is the most frequent OS operation, far above
    // clock interrupts.
    EXPECT_GT(sginap, e->osOpCount(sim::OsOp::Interrupt));
    EXPECT_GT(sginap, e->osOpCount(sim::OsOp::IoSyscall));
}

TEST(Experiment, MultpgmNearZeroIdle)
{
    auto e = quickRun(WorkloadKind::Multpgm);
    EXPECT_LT(e->table1().idlePct, 5.0);
}

TEST(Experiment, OracleLowestOsMissFraction)
{
    auto ep = quickRun(WorkloadKind::Pmake);
    auto eo = quickRun(WorkloadKind::Oracle);
    // Table 1: Oracle has the smallest OS share of misses (26.6 vs
    // ~50 for the engineering workloads).
    EXPECT_LT(eo->table1().osMissFracPct,
              ep->table1().osMissFracPct);
}

TEST(Experiment, OracleDispapDominatesOsInstructionMisses)
{
    auto e = quickRun(WorkloadKind::Oracle, 12000000);
    const auto &mc = e->misses();
    // Figure 4: the database's large working set makes Dispap the top
    // I-miss class for Oracle.
    EXPECT_GT(mc.osI[unsigned(MissClass::Dispap)],
              mc.osI[unsigned(MissClass::Dispos)]);
}

TEST(Experiment, SyncStallDropsWithCachedRmw)
{
    auto e = quickRun(WorkloadKind::Pmake);
    const auto sy = e->syncStallReport();
    // Table 10: the cached LL/SC protocol slashes sync stall.
    EXPECT_GT(sy.uncachedPct, 0.5);
    EXPECT_LT(sy.cachedPct, sy.uncachedPct / 2.0);
}

TEST(Experiment, UtlbFaultsAreCheapAndFrequent)
{
    auto e = quickRun(WorkloadKind::Multpgm);
    const auto &u = e->invocations().utlbFaults();
    EXPECT_GT(u.count, 1000u);
    EXPECT_LT(u.meanCycles(), 200.0);        // "very fast"
    EXPECT_LT(u.meanI() + u.meanD(), 1.0);   // "< 0.1 misses" (approx)
}

TEST(Experiment, OsInvocationReplacesSmallCacheFraction)
{
    auto e = quickRun(WorkloadKind::Pmake);
    const auto &os = e->invocations().osInvocations();
    // 64 KB I-cache has 4096 lines; a mean invocation touches a small
    // fraction of that (Figure 1/3 observation).
    EXPECT_LT(os.meanI(), 1000.0);
    EXPECT_GT(os.count, 100u);
}

TEST(Experiment, ResimTwoWayBeatsDirectMapped)
{
    auto e = quickRun(WorkloadKind::Pmake, 10000000, true);
    auto &rs = e->resim();
    ASSERT_GT(rs.baselineOsMisses(), 0u);
    const auto dm128 = rs.simulate(128 * 1024, 1);
    const auto tw128 = rs.simulate(128 * 1024, 2);
    EXPECT_LE(tw128.osMisses, dm128.osMisses);
    // Larger caches monotonically reduce misses.
    const auto dm512 = rs.simulate(512 * 1024, 1);
    EXPECT_LE(dm512.osMisses, dm128.osMisses);
}

TEST(Experiment, AffinitySchedulingReducesMigration)
{
    ExperimentConfig base;
    base.kind = WorkloadKind::Multpgm;
    base.warmupCycles = 4000000;
    base.measureCycles = 8000000;
    Experiment e1(base);
    e1.run();

    ExperimentConfig aff = base;
    aff.kernelCfg.affinitySched = true;
    Experiment e2(aff);
    e2.run();

    const double m1 = double(e1.kern().migrations()) /
                      double(e1.kern().contextSwitches() + 1);
    const double m2 = double(e2.kern().migrations()) /
                      double(e2.kern().contextSwitches() + 1);
    EXPECT_LT(m2, m1);
}

TEST(Experiment, DeterministicReplay)
{
    auto a = quickRun(WorkloadKind::Pmake, 5000000);
    auto b = quickRun(WorkloadKind::Pmake, 5000000);
    EXPECT_EQ(a->misses().total(), b->misses().total());
    EXPECT_EQ(a->kern().contextSwitches(),
              b->kern().contextSwitches());
}

TEST(Experiment, TimeAccountingIsConserved)
{
    auto e = quickRun(WorkloadKind::Pmake, 5000000);
    const auto acct = e->account();
    const double total = double(acct.all());
    // All four CPUs accounted for every measured cycle (within the
    // slack of in-flight items at the boundary).
    EXPECT_NEAR(total, double(e->elapsed()) * 4, total * 0.01);
}
