/** @file Sweep-service tests.
 *
 *  The daemon's robustness contract, exercised over a real
 *  Unix-domain socket: well-formed run requests are accepted and
 *  settle into queryable results; a full admission queue answers with
 *  a structured reject instead of buffering or blocking; malformed
 *  and unknown input gets a structured error event, never a crash or
 *  a dropped connection.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <thread>

#include "core/service.hh"

using namespace mpos;
using namespace mpos::core;

namespace
{

/** Line-oriented client for one connection to the daemon. */
class Client
{
  public:
    explicit Client(const std::string &path)
    {
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof(addr.sun_path) - 1);
        // The daemon binds on its own thread; retry briefly.
        for (int i = 0; i < 100; ++i) {
            if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                          sizeof(addr)) == 0)
                return;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        }
        ::close(fd);
        fd = -1;
    }

    ~Client()
    {
        if (fd >= 0)
            ::close(fd);
    }

    bool connected() const { return fd >= 0; }

    void
    send(const std::string &line)
    {
        const std::string framed = line + "\n";
        ASSERT_EQ(::send(fd, framed.data(), framed.size(), 0),
                  ssize_t(framed.size()));
    }

    /** Next newline-terminated event (without the newline). */
    std::string
    recvLine()
    {
        while (buf.find('\n') == std::string::npos) {
            char chunk[512];
            const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
            if (n <= 0)
                return "";
            buf.append(chunk, size_t(n));
        }
        const size_t nl = buf.find('\n');
        const std::string line = buf.substr(0, nl);
        buf.erase(0, nl + 1);
        return line;
    }

  private:
    int fd = -1;
    std::string buf;
};

/** A serve() loop on its own thread, shut down via the socket. */
struct Daemon
{
    explicit Daemon(const ServiceOptions &opt) : svc(opt)
    {
        th = std::thread([this] { rc = svc.serve(); });
    }

    void
    shutdown(const std::string &path)
    {
        Client c(path);
        if (c.connected()) {
            c.send("{\"op\":\"shutdown\"}");
            c.recvLine();
        }
        th.join();
    }

    SweepService svc;
    std::thread th;
    int rc = -1;
};

std::string
socketPath(const std::string &leaf)
{
    // sun_path is ~100 bytes; keep it short and collision-free.
    const std::string path = "/tmp/mpos_svc_" + leaf + "_" +
                             std::to_string(::getpid()) + ".sock";
    std::filesystem::remove(path);
    return path;
}

} // namespace

TEST(SweepService, RunsARequestAndServesItsResult)
{
    const std::string path = socketPath("run");
    ServiceOptions opt;
    opt.socketPath = path;
    opt.maxQueue = 4;
    opt.runner.jobs = 2;
    Daemon d(opt);

    Client c(path);
    ASSERT_TRUE(c.connected());
    c.send("{\"op\":\"run\",\"workload\":\"Pmake\",\"cpus\":2,"
           "\"measure_cycles\":30000,\"warmup_cycles\":15000,"
           "\"seed\":7}");
    const std::string accepted = c.recvLine();
    EXPECT_NE(accepted.find("\"event\":\"accepted\""),
              std::string::npos);
    EXPECT_NE(accepted.find("\"id\":\"req-1\""), std::string::npos);
    const std::string done = c.recvLine();
    EXPECT_NE(done.find("\"event\":\"done\""), std::string::npos);
    EXPECT_NE(done.find("\"status\":\"ok\""), std::string::npos);

    // The settled result stays queryable, from a second connection.
    Client c2(path);
    ASSERT_TRUE(c2.connected());
    c2.send("{\"op\":\"result\",\"id\":\"req-1\"}");
    const std::string result = c2.recvLine();
    EXPECT_NE(result.find("\"event\":\"result\""), std::string::npos);
    EXPECT_NE(result.find("\"status\":\"ok\""), std::string::npos);
    c2.send("{\"op\":\"status\"}");
    const std::string status = c2.recvLine();
    EXPECT_NE(status.find("\"inflight\":0"), std::string::npos);
    EXPECT_NE(status.find("\"completed\":1"), std::string::npos);

    d.shutdown(path);
    EXPECT_EQ(d.rc, 0);
    std::filesystem::remove(path);
}

TEST(SweepService, FullQueueAnswersWithAStructuredReject)
{
    const std::string path = socketPath("full");
    ServiceOptions opt;
    opt.socketPath = path;
    opt.maxQueue = 0; // every run request must bounce
    opt.runner.jobs = 1;
    Daemon d(opt);

    Client c(path);
    ASSERT_TRUE(c.connected());
    c.send("{\"op\":\"run\",\"workload\":\"Pmake\"}");
    const std::string line = c.recvLine();
    EXPECT_NE(line.find("\"event\":\"rejected\""), std::string::npos);
    EXPECT_NE(line.find("\"reason\":\"queue-full\""),
              std::string::npos);

    d.shutdown(path);
    EXPECT_EQ(d.rc, 0);
    std::filesystem::remove(path);
}

TEST(SweepService, MalformedInputGetsAnErrorEventNotACrash)
{
    const std::string path = socketPath("bad");
    ServiceOptions opt;
    opt.socketPath = path;
    opt.maxQueue = 2;
    opt.runner.jobs = 1;
    Daemon d(opt);

    Client c(path);
    ASSERT_TRUE(c.connected());

    c.send("this is not json at all {{{");
    EXPECT_NE(c.recvLine().find("\"event\":\"error\""),
              std::string::npos);

    c.send("{\"op\":\"frobnicate\"}");
    EXPECT_NE(c.recvLine().find("\"event\":\"error\""),
              std::string::npos);

    c.send("{\"op\":\"run\",\"workload\":\"NoSuchWorkload\"}");
    EXPECT_NE(c.recvLine().find("\"event\":\"error\""),
              std::string::npos);

    c.send("{\"op\":\"run\",\"workload\":\"Pmake\",\"cpus\":9999}");
    EXPECT_NE(c.recvLine().find("\"event\":\"error\""),
              std::string::npos);

    c.send("{\"op\":\"result\",\"id\":\"req-999\"}");
    EXPECT_NE(c.recvLine().find("\"event\":\"error\""),
              std::string::npos);

    // The connection survived all of it.
    c.send("{\"op\":\"status\"}");
    EXPECT_NE(c.recvLine().find("\"event\":\"status\""),
              std::string::npos);

    d.shutdown(path);
    EXPECT_EQ(d.rc, 0);
    std::filesystem::remove(path);
}
