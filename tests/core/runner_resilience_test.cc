/** @file ExperimentRunner resilience tests.
 *
 *  A failing job must not take the sweep down with it: its loss is
 *  recorded (status/error/attempts), siblings are untouched and stay
 *  byte-identical, a retry with a reseed can recover, and a per-job
 *  wall-clock budget turns a runaway run into a typed timeout.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/runner.hh"
#include "sim/fault/plan.hh"
#include "util/error.hh"

using namespace mpos;
using namespace mpos::core;
using mpos::util::ErrCode;
using mpos::util::SimError;
using workload::WorkloadKind;

namespace
{

ExperimentConfig
quickConfig(WorkloadKind kind, sim::Cycle cycles, uint64_t seed = 7)
{
    ExperimentConfig cfg;
    cfg.kind = kind;
    cfg.warmupCycles = 300000;
    cfg.measureCycles = cycles;
    cfg.options.seed = seed;
    return cfg;
}

/** Arm cfg with a fault seed guaranteed to trip inside the run. */
void
armGuaranteedTrip(ExperimentConfig &cfg, uint64_t first_seed = 1)
{
    cfg.machine.faultHorizon = cfg.warmupCycles + cfg.measureCycles;
    cfg.machine.faultSeed = sim::FaultPlan::firstTrippingSeed(
        first_seed, cfg.machine.faultHorizon);
}

/** Digest of one experiment, for byte-identical comparisons. */
std::string
digest(Experiment &e)
{
    char buf[128];
    std::snprintf(buf, sizeof buf, "elapsed=%llu total=%llu cs=%llu",
                  (unsigned long long)e.elapsed(),
                  (unsigned long long)e.misses().total(),
                  (unsigned long long)e.kern().contextSwitches());
    return buf;
}

} // namespace

TEST(RunnerResilience, JobFailureSurfacesStatusNotException)
{
    ExperimentRunner r(1);
    auto bad = quickConfig(WorkloadKind::Pmake, 400000);
    armGuaranteedTrip(bad);
    r.submit("doomed", bad);

    const ExperimentResult &res = r.result(0); // must not throw
    EXPECT_EQ(res.status, JobStatus::Failed);
    EXPECT_FALSE(res.ok());
    EXPECT_EQ(res.exp, nullptr);
    EXPECT_EQ(res.attempts, 1u);
    EXPECT_NE(res.error.find("watchdog-trip"), std::string::npos)
        << res.error;

    // get() on a failed job raises a typed error, not a crash.
    try {
        r.get("doomed");
        FAIL() << "get() on a failed job must throw";
    } catch (const SimError &e) {
        EXPECT_EQ(e.code(), ErrCode::JobFailed);
    }
}

TEST(RunnerResilience, SiblingJobsSurviveAndStayByteIdentical)
{
    // A reference runner with only the good job...
    ExperimentRunner clean(1);
    clean.submit("good", quickConfig(WorkloadKind::Multpgm, 400000));
    const std::string golden = digest(clean.get("good"));

    // ...and a mixed runner where a sibling dies mid-sweep.
    ExperimentRunner mixed(2);
    auto bad = quickConfig(WorkloadKind::Pmake, 400000);
    armGuaranteedTrip(bad);
    mixed.submit("doomed", bad);
    mixed.submit("good", quickConfig(WorkloadKind::Multpgm, 400000));

    EXPECT_FALSE(mixed.result(0).ok());
    EXPECT_TRUE(mixed.result(1).ok());
    EXPECT_EQ(digest(mixed.get("good")), golden);
    EXPECT_EQ(mixed.failedCount(), 1u);
}

TEST(RunnerResilience, RetryWithReseedRecovers)
{
    // Find S whose plan trips but whose successor S+1 only schedules
    // benign faults (no exhaustion, no synthetic trip), so attempt 2
    // -- which bumps the fault seed to S+1 -- succeeds.
    auto cfg = quickConfig(WorkloadKind::Pmake, 400000);
    const sim::Cycle horizon =
        cfg.warmupCycles + cfg.measureCycles;
    uint64_t seed = 0;
    for (uint64_t s = 1; s < 4000; ++s) {
        const sim::FaultPlan trip(s, horizon);
        if (!trip.syntheticTripAt)
            continue;
        const sim::FaultPlan next(s + 1, horizon);
        if (next.syntheticTripAt || next.slotExhaustAfter ||
            next.shmExhaustAfter || next.userLockExhaustAfter)
            continue;
        seed = s;
        break;
    }
    ASSERT_NE(seed, 0u) << "no trip-then-benign seed pair in 1..3999";

    cfg.machine.faultHorizon = horizon;
    cfg.machine.faultSeed = seed;

    RunnerOptions opt;
    opt.jobs = 1;
    opt.maxAttempts = 3;
    opt.retryBackoffMs = 1;
    ExperimentRunner r(opt);
    r.submit("flaky", cfg);

    const ExperimentResult &res = r.result(0);
    EXPECT_EQ(res.status, JobStatus::Ok) << res.error;
    EXPECT_EQ(res.attempts, 2u);
    EXPECT_NE(res.exp, nullptr);
}

TEST(RunnerResilience, TimeoutReportedAsTypedStatus)
{
    RunnerOptions opt;
    opt.jobs = 1;
    opt.jobTimeoutSec = 0.01; // far less than a 3M-cycle run needs
    ExperimentRunner r(opt);
    r.submit("slow", quickConfig(WorkloadKind::Pmake, 3000000));

    const ExperimentResult &res = r.result(0);
    EXPECT_EQ(res.status, JobStatus::TimedOut);
    EXPECT_NE(res.error.find("timeout"), std::string::npos)
        << res.error;
    EXPECT_EQ(res.exp, nullptr);
}

TEST(RunnerResilience, DuplicateSubmitRaisesBadConfig)
{
    ExperimentRunner r(1);
    r.submit("dup", quickConfig(WorkloadKind::Oracle, 200000));
    try {
        r.submit("dup", quickConfig(WorkloadKind::Oracle, 200000));
        FAIL() << "duplicate submit must throw";
    } catch (const SimError &e) {
        EXPECT_EQ(e.code(), ErrCode::BadConfig);
    }
}
