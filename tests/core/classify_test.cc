/** @file Unit tests of the Table 2 miss classifier. */

#include <gtest/gtest.h>

#include "core/miss_classify.hh"

using namespace mpos;
using namespace mpos::core;
using sim::BusOp;
using sim::BusRecord;
using sim::CacheKind;
using sim::ExecMode;
using sim::MonitorContext;
using sim::OsOp;

namespace
{

MonitorContext
osCtx()
{
    MonitorContext c;
    c.mode = ExecMode::Kernel;
    c.op = OsOp::IoSyscall;
    return c;
}

MonitorContext
appCtx()
{
    MonitorContext c;
    c.mode = ExecMode::User;
    c.op = OsOp::None;
    return c;
}

BusRecord
rec(CpuId cpu, sim::Addr line, BusOp op, CacheKind k,
    const MonitorContext &ctx)
{
    return {0, cpu, line, op, k, ctx};
}

struct Sink : MissSink
{
    std::vector<ClassifiedMiss> seen;
    void onMiss(const ClassifiedMiss &m) override { seen.push_back(m); }
};

struct ClassifyTest : ::testing::Test
{
    ClassifyTest() : mc(4, 1 << 20, 16) { mc.addSink(&sink); }
    MissClassifier mc;
    Sink sink;
};

} // namespace

TEST_F(ClassifyTest, FirstAccessIsCold)
{
    mc.busTransaction(rec(0, 0x100, BusOp::Read, CacheKind::Data,
                          osCtx()));
    EXPECT_EQ(mc.counts().osD[unsigned(MissClass::Cold)], 1u);
    ASSERT_EQ(sink.seen.size(), 1u);
    EXPECT_EQ(int(sink.seen[0].cls), int(MissClass::Cold));
}

TEST_F(ClassifyTest, ColdIsPerProcessor)
{
    mc.busTransaction(rec(0, 0x100, BusOp::Read, CacheKind::Data,
                          osCtx()));
    mc.busTransaction(rec(1, 0x100, BusOp::Read, CacheKind::Data,
                          osCtx()));
    EXPECT_EQ(mc.counts().osD[unsigned(MissClass::Cold)], 2u);
}

TEST_F(ClassifyTest, DisplacementByOsIsDispos)
{
    mc.busTransaction(rec(0, 0x100, BusOp::Read, CacheKind::Data,
                          osCtx()));
    mc.evict(0, CacheKind::Data, 0x100, osCtx());
    mc.busTransaction(rec(0, 0x100, BusOp::Read, CacheKind::Data,
                          osCtx()));
    EXPECT_EQ(mc.counts().osD[unsigned(MissClass::Dispos)], 1u);
    // No application ran in between: Dispossame.
    EXPECT_EQ(mc.counts().osDispossameD, 1u);
}

TEST_F(ClassifyTest, DispossameClearedByAppInvocation)
{
    mc.busTransaction(rec(0, 0x100, BusOp::Read, CacheKind::Data,
                          osCtx()));
    mc.evict(0, CacheKind::Data, 0x100, osCtx());
    mc.osExit(10, 0, OsOp::IoSyscall); // application resumes
    mc.busTransaction(rec(0, 0x100, BusOp::Read, CacheKind::Data,
                          osCtx()));
    EXPECT_EQ(mc.counts().osD[unsigned(MissClass::Dispos)], 1u);
    EXPECT_EQ(mc.counts().osDispossameD, 0u);
}

TEST_F(ClassifyTest, DisplacementByAppIsDispap)
{
    mc.busTransaction(rec(0, 0x200, BusOp::Read, CacheKind::Instr,
                          osCtx()));
    mc.evict(0, CacheKind::Instr, 0x200, appCtx());
    mc.busTransaction(rec(0, 0x200, BusOp::Read, CacheKind::Instr,
                          osCtx()));
    EXPECT_EQ(mc.counts().osI[unsigned(MissClass::Dispap)], 1u);
}

TEST_F(ClassifyTest, CoherenceInvalidationIsSharing)
{
    mc.busTransaction(rec(0, 0x300, BusOp::Read, CacheKind::Data,
                          osCtx()));
    mc.invalSharing(0, CacheKind::Data, 0x300);
    mc.busTransaction(rec(0, 0x300, BusOp::Read, CacheKind::Data,
                          osCtx()));
    EXPECT_EQ(mc.counts().osD[unsigned(MissClass::Sharing)], 1u);
}

TEST_F(ClassifyTest, UpgradeCountsAsSharing)
{
    mc.busTransaction(rec(0, 0x300, BusOp::Upgrade, CacheKind::Data,
                          osCtx()));
    EXPECT_EQ(mc.counts().osD[unsigned(MissClass::Sharing)], 1u);
}

TEST_F(ClassifyTest, PageReallocFlushIsInval)
{
    mc.busTransaction(rec(0, 0x400, BusOp::Read, CacheKind::Instr,
                          osCtx()));
    mc.invalPageRealloc(0, 0x400);
    mc.busTransaction(rec(0, 0x400, BusOp::Read, CacheKind::Instr,
                          osCtx()));
    EXPECT_EQ(mc.counts().osI[unsigned(MissClass::Inval)], 1u);
}

TEST_F(ClassifyTest, UncachedAccesses)
{
    mc.busTransaction(rec(0, 0x500, BusOp::UncachedRead,
                          CacheKind::Data, osCtx()));
    EXPECT_EQ(mc.counts().osD[unsigned(MissClass::Uncached)], 1u);
}

TEST_F(ClassifyTest, WritebacksNotClassified)
{
    mc.busTransaction(rec(0, 0x600, BusOp::Writeback, CacheKind::Data,
                          osCtx()));
    EXPECT_EQ(mc.counts().total(), 0u);
    EXPECT_EQ(mc.writebacks(), 1u);
}

TEST_F(ClassifyTest, AppMissesSeparatedFromOs)
{
    mc.busTransaction(rec(0, 0x700, BusOp::Read, CacheKind::Data,
                          appCtx()));
    EXPECT_EQ(mc.counts().appD[unsigned(MissClass::Cold)], 1u);
    EXPECT_EQ(mc.counts().osTotal(), 0u);
}

TEST_F(ClassifyTest, ApDisposIsAppMissAfterOsEviction)
{
    mc.busTransaction(rec(0, 0x800, BusOp::Read, CacheKind::Data,
                          appCtx()));
    mc.evict(0, CacheKind::Data, 0x800, osCtx());
    mc.busTransaction(rec(0, 0x800, BusOp::Read, CacheKind::Data,
                          appCtx()));
    EXPECT_EQ(mc.counts().appD[unsigned(MissClass::Dispos)], 1u);
}

TEST_F(ClassifyTest, ExactlyOneClassPerMissNoUnknown)
{
    // A short scenario honoring the contract that a tracked-present
    // block never misses again without an eviction or invalidation;
    // every miss lands in exactly one bucket and never Unknown.
    for (int i = 0; i < 50; ++i) {
        const sim::Addr line = (i % 7) * 16;
        mc.busTransaction(rec(0, line, BusOp::Read, CacheKind::Data,
                              i % 2 ? osCtx() : appCtx()));
        if (i % 2 == 0)
            mc.evict(0, CacheKind::Data, line,
                     i % 4 ? osCtx() : appCtx());
        else
            mc.invalSharing(0, CacheKind::Data, line);
    }
    const auto &c = mc.counts();
    EXPECT_EQ(c.osD[unsigned(MissClass::Unknown)], 0u);
    EXPECT_EQ(c.appD[unsigned(MissClass::Unknown)], 0u);
    EXPECT_EQ(c.total(), uint64_t(sink.seen.size()));
}

TEST_F(ClassifyTest, IdleMissesTrackedSeparately)
{
    MonitorContext idle;
    idle.mode = ExecMode::Idle;
    idle.op = OsOp::IdleLoop;
    mc.busTransaction(rec(2, 0x900, BusOp::Read, CacheKind::Instr,
                          idle));
    EXPECT_EQ(mc.counts().idleI[unsigned(MissClass::Cold)], 1u);
    EXPECT_EQ(mc.counts().osTotal(), 0u);
}
