/** @file Sweep-journal tests.
 *
 *  The journal is the crash-recovery backbone: every record appended
 *  before a kill must replay intact, a torn tail (the kill landed
 *  mid-append) must be dropped and truncated away rather than poison
 *  the file, and the job-identity hash must be exactly as sensitive
 *  as the measured results are. These tests pin the round-trip of
 *  every record type, the torn-tail contract, poison persistence,
 *  fresh-open semantics and hash stability.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/journal.hh"
#include "util/error.hh"

using namespace mpos;
using namespace mpos::core;

namespace
{

/** Fresh per-test journal directory under the gtest temp root. */
std::string
journalDir(const std::string &leaf)
{
    const std::string dir = testing::TempDir() + "/" + leaf;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

JournalJobRow
sampleRow(const std::string &name, uint64_t hash)
{
    JournalJobRow row;
    row.name = name;
    row.configHash = hash;
    row.status = 2; // JobStatus::Done
    row.attempts = 1;
    row.monitorTransactions = 12345;
    row.invariantChecks = 67;
    row.kind = 1;
    row.cpus = 4;
    row.measureCycles = 300000;
    return row;
}

ExperimentConfig
quickConfig(uint64_t seed = 7)
{
    ExperimentConfig cfg;
    cfg.kind = workload::WorkloadKind::Pmake;
    cfg.warmupCycles = 150000;
    cfg.measureCycles = 300000;
    cfg.options.seed = seed;
    return cfg;
}

} // namespace

TEST(SweepJournal, RoundTripsEveryRecordType)
{
    const std::string dir = journalDir("journal_roundtrip");
    {
        SweepJournal j;
        j.open(dir, false);
        j.appendPlan("std/Pmake", 0x1111);
        j.appendPlan("fig11/cpus4", 0x2222);
        j.appendJobStart("std/Pmake", 0x1111, 7, 1, "tag-a");
        j.appendJobEnd(sampleRow("std/Pmake", 0x1111));
        j.appendJobStart("fig11/cpus4", 0x2222, 9, 2, "");
        j.appendAnalysisEnd("fig11_lock_scaling", true, "",
                            "table body\nwith two lines\n");
        j.appendPoison(0xdeadbeef);
    }
    SweepJournal j;
    j.open(dir, true);
    const JournalState &st = j.state();
    ASSERT_EQ(st.plan.size(), 2u);
    EXPECT_EQ(st.plan[0].first, "std/Pmake");
    EXPECT_EQ(st.plan[0].second, 0x1111u);
    EXPECT_EQ(st.plan[1].first, "fig11/cpus4");

    ASSERT_TRUE(st.jobs.count("std/Pmake"));
    const JournalJobRow &row = st.jobs.at("std/Pmake");
    EXPECT_EQ(row.configHash, 0x1111u);
    EXPECT_EQ(row.status, 2u);
    EXPECT_EQ(row.monitorTransactions, 12345u);
    EXPECT_EQ(row.invariantChecks, 67u);
    EXPECT_EQ(row.cpus, 4u);
    EXPECT_EQ(row.measureCycles, 300000u);

    // fig11/cpus4 has a JobStart but no JobEnd: it died in flight.
    EXPECT_FALSE(st.inFlight("std/Pmake"));
    EXPECT_TRUE(st.inFlight("fig11/cpus4"));
    ASSERT_TRUE(st.started.count("fig11/cpus4"));
    EXPECT_EQ(st.started.at("fig11/cpus4").seed, 9u);
    EXPECT_EQ(st.started.at("fig11/cpus4").attempt, 2u);
    EXPECT_EQ(st.started.at("std/Pmake").requestTag, "tag-a");

    ASSERT_TRUE(st.analyses.count("fig11_lock_scaling"));
    EXPECT_TRUE(st.analyses.at("fig11_lock_scaling").ok);
    EXPECT_EQ(st.analyses.at("fig11_lock_scaling").output,
              "table body\nwith two lines\n");

    ASSERT_EQ(st.poisonedKeys.size(), 1u);
    EXPECT_EQ(st.poisonedKeys[0], 0xdeadbeefu);
    EXPECT_FALSE(st.truncatedTail);
}

TEST(SweepJournal, TornTailIsTruncatedNotFatal)
{
    const std::string dir = journalDir("journal_torn");
    {
        SweepJournal j;
        j.open(dir, false);
        j.appendPlan("std/Pmake", 0xabc);
        j.appendJobEnd(sampleRow("std/Pmake", 0xabc));
    }
    const std::string path = dir + "/sweep.mpj";
    const auto intact = std::filesystem::file_size(path);
    {
        // A kill mid-append: a frame length promising more bytes than
        // the file holds.
        FILE *f = std::fopen(path.c_str(), "ab");
        ASSERT_NE(f, nullptr);
        const unsigned char torn[6] = {0x40, 0, 0, 0, 0x03, 0x99};
        std::fwrite(torn, 1, sizeof torn, f);
        std::fclose(f);
    }
    {
        SweepJournal j;
        j.open(dir, true);
        EXPECT_TRUE(j.state().truncatedTail);
        EXPECT_EQ(j.state().records, 2u);
        ASSERT_TRUE(j.state().jobs.count("std/Pmake"));
        // The torn bytes are gone: the file ends at the last intact
        // record again.
        EXPECT_EQ(std::filesystem::file_size(path), intact);
        // And appending after the truncation keeps the file valid.
        j.appendPoison(0x42);
    }
    SweepJournal j;
    j.open(dir, true);
    EXPECT_FALSE(j.state().truncatedTail);
    EXPECT_EQ(j.state().records, 3u);
    ASSERT_EQ(j.state().poisonedKeys.size(), 1u);
    EXPECT_EQ(j.state().poisonedKeys[0], 0x42u);
}

TEST(SweepJournal, FreshOpenDiscardsAnExistingJournal)
{
    const std::string dir = journalDir("journal_fresh");
    {
        SweepJournal j;
        j.open(dir, false);
        j.appendPlan("std/Pmake", 1);
        j.appendJobEnd(sampleRow("std/Pmake", 1));
    }
    {
        SweepJournal j;
        j.open(dir, false); // resume=false: start over
        EXPECT_EQ(j.state().records, 0u);
        EXPECT_TRUE(j.state().plan.empty());
    }
    SweepJournal j;
    j.open(dir, true);
    EXPECT_EQ(j.state().records, 0u);
}

TEST(SweepJournal, LastJobEndWinsAndPlansDedup)
{
    const std::string dir = journalDir("journal_lastwins");
    {
        SweepJournal j;
        j.open(dir, false);
        j.appendPlan("std/Pmake", 5);
        j.appendPlan("std/Pmake", 5); // resubmission: deduped
        JournalJobRow first = sampleRow("std/Pmake", 5);
        first.status = 3; // Failed
        first.error = "watchdog";
        j.appendJobEnd(first);
        JournalJobRow second = sampleRow("std/Pmake", 5);
        second.attempts = 2;
        j.appendJobEnd(second);
    }
    SweepJournal j;
    j.open(dir, true);
    ASSERT_EQ(j.state().plan.size(), 1u);
    const JournalJobRow &row = j.state().jobs.at("std/Pmake");
    EXPECT_EQ(row.status, 2u);
    EXPECT_EQ(row.attempts, 2u);
    EXPECT_TRUE(row.error.empty());
}

TEST(SweepJournal, RejectsAForeignFile)
{
    const std::string dir = journalDir("journal_foreign");
    const std::string path = dir + "/sweep.mpj";
    FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not a journal", f);
    std::fclose(f);
    SweepJournal j;
    EXPECT_THROW(j.open(dir, true), util::SimError);
}

TEST(SweepJournal, JobConfigHashTracksMeasuredIdentity)
{
    const ExperimentConfig a = quickConfig(7);
    const ExperimentConfig b = quickConfig(7);
    EXPECT_EQ(SweepJournal::jobConfigHash(a),
              SweepJournal::jobConfigHash(b));

    ExperimentConfig seed = quickConfig(8);
    EXPECT_NE(SweepJournal::jobConfigHash(a),
              SweepJournal::jobConfigHash(seed));

    ExperimentConfig longer = quickConfig(7);
    longer.measureCycles = 600000;
    EXPECT_NE(SweepJournal::jobConfigHash(a),
              SweepJournal::jobConfigHash(longer));

    // The request tag is an opaque caller label, not job identity.
    ExperimentConfig tagged = quickConfig(7);
    tagged.requestTag = "{\"op\":\"run\"}";
    EXPECT_EQ(SweepJournal::jobConfigHash(a),
              SweepJournal::jobConfigHash(tagged));
}
