/** @file ExperimentRunner tests.
 *
 *  The load-bearing property is the golden check: because every
 *  Experiment is deterministic and results come back in submission
 *  order, a serialization of the whole batch must be byte-identical
 *  whether the runner used 1 host thread or 4.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/runner.hh"

using namespace mpos;
using namespace mpos::core;
using workload::WorkloadKind;

namespace
{

ExperimentConfig
quickConfig(WorkloadKind kind, sim::Cycle cycles, uint64_t seed = 7)
{
    ExperimentConfig cfg;
    cfg.kind = kind;
    cfg.warmupCycles = 500000;
    cfg.measureCycles = cycles;
    cfg.options.seed = seed;
    return cfg;
}

void
submitBatch(ExperimentRunner &r)
{
    r.submit("pmake", quickConfig(WorkloadKind::Pmake, 1500000));
    r.submit("multpgm", quickConfig(WorkloadKind::Multpgm, 1200000));
    r.submit("oracle", quickConfig(WorkloadKind::Oracle, 1000000));
    r.submit("pmake-seed9",
             quickConfig(WorkloadKind::Pmake, 1500000, 9));
}

/** Byte-exact digest of everything an analysis could print. */
std::string
serializeBatch(ExperimentRunner &r)
{
    std::string out;
    char buf[256];
    for (const auto &res : r.results()) {
        const auto &mc = res.exp->misses();
        std::snprintf(
            buf, sizeof buf,
            "%s elapsed=%llu total=%llu os=%llu osI=%llu cs=%llu "
            "migr=%llu\n",
            res.name.c_str(),
            (unsigned long long)res.exp->elapsed(),
            (unsigned long long)mc.total(),
            (unsigned long long)mc.osTotal(),
            (unsigned long long)mc.osITotal(),
            (unsigned long long)res.exp->kern().contextSwitches(),
            (unsigned long long)res.exp->kern().migrations());
        out += buf;
    }
    return out;
}

} // namespace

TEST(ExperimentRunner, GoldenOutputIndependentOfThreadCount)
{
    ExperimentRunner serial(1);
    ASSERT_EQ(serial.jobs(), 1u);
    submitBatch(serial);
    const std::string golden = serializeBatch(serial);

    ExperimentRunner parallel(4);
    ASSERT_EQ(parallel.jobs(), 4u);
    submitBatch(parallel);
    const std::string got = serializeBatch(parallel);

    EXPECT_EQ(golden, got); // byte-identical, not just "close"
    EXPECT_NE(golden.find("pmake elapsed="), std::string::npos);
}

TEST(ExperimentRunner, ResultsKeepSubmissionOrder)
{
    ExperimentRunner r(4);
    submitBatch(r);
    const auto &slots = r.results();
    ASSERT_EQ(slots.size(), 4u);
    EXPECT_EQ(slots[0].name, "pmake");
    EXPECT_EQ(slots[1].name, "multpgm");
    EXPECT_EQ(slots[2].name, "oracle");
    EXPECT_EQ(slots[3].name, "pmake-seed9");
    for (const auto &s : slots) {
        EXPECT_NE(s.exp, nullptr);
        EXPECT_GT(s.wallSeconds, 0.0);
    }
}

TEST(ExperimentRunner, FindAndNamedGet)
{
    ExperimentRunner r(2);
    const size_t idx =
        r.submit("one", quickConfig(WorkloadKind::Pmake, 800000));
    EXPECT_EQ(r.find("one"), idx);
    EXPECT_EQ(r.find("nope"), ExperimentRunner::npos);
    Experiment &byName = r.get("one");
    Experiment &byIdx = r.get(idx);
    EXPECT_EQ(&byName, &byIdx);
    EXPECT_GT(byName.elapsed(), 0u);
}

TEST(ExperimentRunner, SeedChangesResults)
{
    // Guards the golden test against vacuity: different configs must
    // actually produce different digests.
    ExperimentRunner r(2);
    r.submit("a", quickConfig(WorkloadKind::Pmake, 1500000, 7));
    r.submit("b", quickConfig(WorkloadKind::Pmake, 1500000, 9));
    r.waitAll();
    EXPECT_NE(r.get("a").misses().total(),
              r.get("b").misses().total());
}
