/** @file Warm-start cache tests.
 *
 *  The warm-start cache is host-side policy: restoring a memoized
 *  end-of-warmup image must leave every measured statistic exactly as
 *  a cold run produces it. These tests pin that equivalence, the
 *  cross-process (on-disk) reuse path, the config-hash key's
 *  sensitivity rules, and the runner interactions (retry-with-reseed
 *  must never reuse the failed seed's image; a per-job wall budget
 *  composes with warm starts).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "core/runner.hh"
#include "core/warmcache.hh"
#include "sim/fault/plan.hh"
#include "util/error.hh"

using namespace mpos;
using namespace mpos::core;
using workload::WorkloadKind;

namespace
{

ExperimentConfig
quickConfig(WorkloadKind kind, uint64_t seed = 7)
{
    ExperimentConfig cfg;
    cfg.kind = kind;
    cfg.warmupCycles = 300000;
    cfg.measureCycles = 400000;
    cfg.options.seed = seed;
    return cfg;
}

/** Digest of everything an experiment measures, for exact compares. */
std::string
digest(Experiment &e)
{
    const sim::CycleAccount acc = e.account();
    char buf[256];
    std::snprintf(
        buf, sizeof buf,
        "elapsed=%llu misses=%llu cs=%llu tx=%llu "
        "user=%llu os=%llu idle=%llu io=%llu",
        (unsigned long long)e.elapsed(),
        (unsigned long long)e.misses().total(),
        (unsigned long long)e.kern().contextSwitches(),
        (unsigned long long)e.machine().monitor().transactions(),
        (unsigned long long)acc.total[0],
        (unsigned long long)acc.total[1],
        (unsigned long long)acc.total[2],
        (unsigned long long)e.osOpCount(sim::OsOp::IoSyscall));
    return buf;
}

std::string
runDigest(ExperimentConfig cfg, WarmStartCache *cache)
{
    cfg.warmCache = cache;
    Experiment e(cfg);
    e.run();
    return digest(e);
}

/** A fresh on-disk cache dir: images from earlier test-binary runs
 *  under the same TempDir would otherwise satisfy the "cold" pass. */
std::string
freshDir(const char *leaf)
{
    const std::string dir = testing::TempDir() + "/" + leaf;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

} // namespace

TEST(WarmKey, IgnoresMeasurePhaseKnobsOnly)
{
    const ExperimentConfig base = quickConfig(WorkloadKind::Pmake);
    const uint64_t key = Experiment(base).warmKey();

    // Measurement-phase knobs share the warm image.
    {
        ExperimentConfig c = base;
        c.measureCycles *= 2;
        c.collectMisses = false;
        c.timeoutSeconds = 99;
        EXPECT_EQ(Experiment(c).warmKey(), key);
    }
    // Anything event-affecting changes the key.
    {
        ExperimentConfig c = base;
        c.options.seed += 1;
        EXPECT_NE(Experiment(c).warmKey(), key);
    }
    {
        ExperimentConfig c = base;
        c.warmupCycles += 1;
        EXPECT_NE(Experiment(c).warmKey(), key);
    }
    {
        ExperimentConfig c = base;
        c.machine.numCpus = 2;
        EXPECT_NE(Experiment(c).warmKey(), key);
    }
    {
        ExperimentConfig c = base;
        c.kind = WorkloadKind::Multpgm;
        EXPECT_NE(Experiment(c).warmKey(), key);
    }
    {
        ExperimentConfig c = base;
        c.machine.faultSeed = 1234;
        EXPECT_NE(Experiment(c).warmKey(), key);
    }
}

TEST(WarmStart, WarmRunMatchesColdRunExactly)
{
    const ExperimentConfig cfg = quickConfig(WorkloadKind::Pmake);
    const std::string cold = runDigest(cfg, nullptr);

    WarmStartCache cache; // in-memory only
    // First cached run is a miss: it simulates the warmup, stores the
    // image, and must still measure exactly what the cold run did.
    EXPECT_EQ(runDigest(cfg, &cache), cold);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().stores, 1u);

    // Second run restores the image instead of simulating the warmup.
    EXPECT_EQ(runDigest(cfg, &cache), cold);
    EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(WarmStart, EveryWorkloadKindRoundTrips)
{
    for (WorkloadKind kind :
         {WorkloadKind::Pmake, WorkloadKind::Multpgm,
          WorkloadKind::Oracle}) {
        const ExperimentConfig cfg = quickConfig(kind);
        WarmStartCache cache;
        const std::string cold = runDigest(cfg, &cache);
        EXPECT_EQ(runDigest(cfg, &cache), cold)
            << "kind " << unsigned(kind);
        EXPECT_EQ(cache.stats().hits, 1u) << "kind " << unsigned(kind);
    }
}

TEST(WarmStart, RestoredRunIsCheckerClean)
{
    // Regression: kernel boot emits idle-loop osEnter events before
    // any analysis observer attaches, and the checker (wired at
    // machine construction) sees them. A restored machine skips the
    // warmup that balances that stream, so the checker must drop its
    // stream-derived state at restore or it reports a phantom
    // "osEnter while already inside the OS" on the first CPU that
    // was in user mode at the snapshot point.
    ExperimentConfig cfg = quickConfig(WorkloadKind::Multpgm);
    cfg.machine.numCpus = 8;
    cfg.machine.check = true; // abort-on-violation: a false positive
                              // kills the test process
    WarmStartCache cache;
    const std::string cold = runDigest(cfg, &cache);
    EXPECT_EQ(runDigest(cfg, &cache), cold);
    EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(WarmStart, DiskCacheWarmsALaterProcess)
{
    const std::string dir = freshDir("mpos_warm_disk");
    const ExperimentConfig cfg = quickConfig(WorkloadKind::Multpgm);

    std::string cold;
    {
        WarmStartCache first(dir);
        cold = runDigest(cfg, &first);
        EXPECT_EQ(first.stats().stores, 1u);
        EXPECT_GT(first.stats().bytesWritten, 0u);
    }
    {
        // A fresh cache instance = a new process invocation: the only
        // way it can hit is through the on-disk image.
        WarmStartCache second(dir);
        EXPECT_EQ(runDigest(cfg, &second), cold);
        EXPECT_EQ(second.stats().hits, 1u);
        EXPECT_EQ(second.stats().misses, 0u);
        EXPECT_GT(second.stats().bytesRead, 0u);
    }
}

TEST(WarmStart, CorruptDiskImageIsAMissNotAnError)
{
    const std::string dir = freshDir("mpos_warm_corrupt");
    const ExperimentConfig cfg = quickConfig(WorkloadKind::Oracle);

    std::string cold;
    std::string path;
    {
        WarmStartCache first(dir);
        Experiment probe(cfg);
        cold = runDigest(cfg, &first);
        char name[32];
        std::snprintf(name, sizeof name, "warm-%016llx",
                      (unsigned long long)probe.warmKey());
        path = dir + "/" + name;
    }
    // Truncate the stored image; the next cache must fall back to a
    // cold warmup and still produce identical results.
    {
        FILE *f = fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        fputs("not a snapshot", f);
        fclose(f);
    }
    WarmStartCache second(dir);
    EXPECT_EQ(runDigest(cfg, &second), cold);
    EXPECT_EQ(second.stats().hits, 0u);
    EXPECT_EQ(second.stats().misses, 1u);
}

TEST(WarmStart, RetriedJobNeverReusesTheFailedSeedsImage)
{
    // Find a fault seed whose plan trips but whose successor is
    // benign, as in the resilience tests: attempt 1 dies, attempt 2
    // reseeds (+1 to the workload AND fault seeds) and succeeds.
    ExperimentConfig cfg = quickConfig(WorkloadKind::Pmake);
    const sim::Cycle horizon = cfg.warmupCycles + cfg.measureCycles;
    uint64_t seed = 0;
    for (uint64_t s = 1; s < 4000; ++s) {
        const sim::FaultPlan trip(s, horizon);
        if (!trip.syntheticTripAt)
            continue;
        const sim::FaultPlan next(s + 1, horizon);
        if (next.syntheticTripAt || next.slotExhaustAfter ||
            next.shmExhaustAfter || next.userLockExhaustAfter)
            continue;
        seed = s;
        break;
    }
    ASSERT_NE(seed, 0u) << "no trip-then-benign seed pair in 1..3999";
    cfg.machine.faultHorizon = horizon;
    cfg.machine.faultSeed = seed;

    // The reseeded retry must compute a different warm key.
    {
        ExperimentConfig retried = cfg;
        retried.options.seed += 1;
        retried.machine.faultSeed += 1;
        EXPECT_NE(Experiment(cfg).warmKey(),
                  Experiment(retried).warmKey());
    }

    WarmStartCache cache;
    RunnerOptions opt;
    opt.jobs = 1;
    opt.maxAttempts = 3;
    opt.retryBackoffMs = 1;
    opt.warmCache = &cache;
    ExperimentRunner r(opt);
    r.submit("flaky", cfg);

    const ExperimentResult &res = r.result(0);
    EXPECT_EQ(res.status, JobStatus::Ok) << res.error;
    EXPECT_EQ(res.attempts, 2u);
    // Both attempts were keyed differently, so neither could hit:
    // a retry must never restore the failed seed's warm image.
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(WarmStart, JobTimeoutComposesWithWarmStarts)
{
    const ExperimentConfig cfg = quickConfig(WorkloadKind::Multpgm);
    WarmStartCache cache;

    RunnerOptions opt;
    opt.jobs = 1;
    opt.jobTimeoutSec = 300; // generous: exercises wiring, not racing
    opt.warmCache = &cache;

    ExperimentRunner r(opt);
    r.submit("cold", cfg);
    r.submit("warm", cfg);
    r.waitAll();

    EXPECT_TRUE(r.result(0).ok()) << r.result(0).error;
    EXPECT_TRUE(r.result(1).ok()) << r.result(1).error;
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 1u);

    // Identical measured output either way.
    char a[128], b[128];
    std::snprintf(a, sizeof a, "%llu/%llu",
                  (unsigned long long)r.get("cold").elapsed(),
                  (unsigned long long)r.get("cold").misses().total());
    std::snprintf(b, sizeof b, "%llu/%llu",
                  (unsigned long long)r.get("warm").elapsed(),
                  (unsigned long long)r.get("warm").misses().total());
    EXPECT_STREQ(a, b);
}
