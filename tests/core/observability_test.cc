/** @file Metrics-window and profiler reconciliation tests.
 *
 *  The contracts under test: the time-sliced metrics arrays depend on
 *  simulated time only (byte-identical across host thread counts);
 *  the profiler's span-based cycle attribution is conservative --
 *  exactly elapsed * numCpus cycles between reset and finish, with
 *  the per-pid view summing to the same total; and its per-context
 *  miss tallies reconcile exactly with the core classifier and with
 *  core/attribution's per-routine data-miss counts.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <sstream>

#include "core/experiment.hh"
#include "core/runner.hh"
#include "sim/trace/metrics.hh"
#include "sim/trace/profile.hh"

using namespace mpos;
using namespace mpos::core;
using namespace mpos::sim;
using sim::trace::MetricsWindow;
using sim::trace::profileMissSlots;
using workload::WorkloadKind;

namespace
{

ExperimentConfig
observedConfig(WorkloadKind kind)
{
    ExperimentConfig cfg;
    cfg.kind = kind;
    cfg.warmupCycles = 100000;
    cfg.measureCycles = 200000;
    cfg.options.seed = 7;
    cfg.machine.metrics = true;
    cfg.machine.metricsWindowCycles = 50000;
    cfg.machine.profile = true;
    return cfg;
}

bool
sameWindow(const MetricsWindow &a, const MetricsWindow &b)
{
    return a.startCycle == b.startCycle &&
           std::memcmp(a.busOps, b.busOps, sizeof a.busOps) == 0 &&
           a.osBusOps == b.osBusOps && a.iFills == b.iFills &&
           a.dFills == b.dFills && a.invalSharing == b.invalSharing &&
           a.invalRealloc == b.invalRealloc &&
           a.evictions == b.evictions && a.osEnters == b.osEnters &&
           a.lockAcquires == b.lockAcquires &&
           a.lockHandoffs == b.lockHandoffs &&
           a.lockFails == b.lockFails;
}

} // namespace

TEST(Metrics, WindowsAreContiguousAndActive)
{
    Experiment exp(observedConfig(WorkloadKind::Pmake));
    exp.run();
    const auto *mx = exp.machine().metrics();
    ASSERT_NE(mx, nullptr);

    const auto &win = mx->windows();
    // 100k warmup + 200k measure at 50k windows: at least 6 slices.
    ASSERT_GE(win.size(), 6u);
    uint64_t busTotal = 0, acquires = 0;
    for (size_t i = 0; i < win.size(); ++i) {
        EXPECT_EQ(win[i].startCycle, i * mx->windowCycles());
        busTotal += win[i].busTotal();
        acquires += win[i].lockAcquires;
    }
    EXPECT_GT(busTotal, 0u);
    EXPECT_GT(acquires, 0u);

    // Phase marks: warmup at cycle 0, measure where warmup ended.
    const auto &phases = mx->phases();
    ASSERT_EQ(phases.size(), 2u);
    EXPECT_EQ(phases[0].name, "warmup");
    EXPECT_EQ(phases[1].name, "measure");
    EXPECT_GE(phases[1].startCycle, exp.config().warmupCycles);
}

TEST(Metrics, DeterministicAcrossHostThreadCounts)
{
    // Same three jobs through a 1-thread and a 3-thread runner: the
    // per-window arrays must match field for field. Simulated time is
    // the only clock the metrics engine sees.
    const WorkloadKind kinds[3] = {WorkloadKind::Pmake,
                                   WorkloadKind::Multpgm,
                                   WorkloadKind::Oracle};
    ExperimentRunner serial(1), wide(3);
    for (const auto kind : kinds) {
        const std::string name = workload::workloadName(kind);
        serial.submit(name, observedConfig(kind));
        wide.submit(name, observedConfig(kind));
    }
    for (const auto kind : kinds) {
        const std::string name = workload::workloadName(kind);
        const auto *a = serial.get(name).machine().metrics();
        const auto *b = wide.get(name).machine().metrics();
        ASSERT_NE(a, nullptr);
        ASSERT_NE(b, nullptr);
        ASSERT_EQ(a->windows().size(), b->windows().size()) << name;
        for (size_t i = 0; i < a->windows().size(); ++i)
            EXPECT_TRUE(sameWindow(a->windows()[i], b->windows()[i]))
                << name << " window " << i;
    }
}

TEST(Profiler, CycleAttributionIsConservative)
{
    Experiment exp(observedConfig(WorkloadKind::Pmake));
    exp.run();
    const auto *pf = exp.machine().profiler();
    ASSERT_NE(pf, nullptr);

    // Between the measure-phase reset and finish, every simulated
    // cycle of every CPU lands in exactly one key.
    const uint64_t expect =
        exp.elapsed() * exp.config().machine.numCpus;
    EXPECT_EQ(pf->totalCycles(), expect);

    // The per-pid view is another partition of the same cycles.
    uint64_t pidSum = 0;
    for (const auto &[pid, cycles] : pf->pidCycles())
        pidSum += cycles;
    EXPECT_EQ(pidSum, expect);
}

TEST(Profiler, MissTalliesReconcileWithClassifier)
{
    Experiment exp(observedConfig(WorkloadKind::Pmake));
    exp.run();
    const auto *pf = exp.machine().profiler();
    ASSERT_NE(pf, nullptr);
    const auto &mc = exp.misses();

    // Sum the profiler's per-key tallies by execution mode; they must
    // equal the classifier's aggregate counters class by class (both
    // observe the same classified stream over the measure phase).
    uint64_t gotI[3][profileMissSlots] = {};
    uint64_t gotD[3][profileMissSlots] = {};
    for (const auto &e : pf->entries()) {
        for (uint32_t c = 0; c < profileMissSlots; ++c) {
            gotI[unsigned(e.mode)][c] += e.missesI[c];
            gotD[unsigned(e.mode)][c] += e.missesD[c];
        }
    }
    const unsigned user = unsigned(ExecMode::User);
    const unsigned kern = unsigned(ExecMode::Kernel);
    const unsigned idle = unsigned(ExecMode::Idle);
    for (uint32_t c = 0; c < numMissClasses; ++c) {
        EXPECT_EQ(gotI[kern][c], mc.osI[c]) << "osI class " << c;
        EXPECT_EQ(gotD[kern][c], mc.osD[c]) << "osD class " << c;
        EXPECT_EQ(gotI[user][c], mc.appI[c]) << "appI class " << c;
        EXPECT_EQ(gotD[user][c], mc.appD[c]) << "appD class " << c;
        EXPECT_EQ(gotI[idle][c], mc.idleI[c]) << "idleI class " << c;
        EXPECT_EQ(gotD[idle][c], mc.idleD[c]) << "idleD class " << c;
    }
}

TEST(Profiler, RoutineMissesReconcileWithAttribution)
{
    Experiment exp(observedConfig(WorkloadKind::Pmake));
    exp.run();
    const auto *pf = exp.machine().profiler();
    ASSERT_NE(pf, nullptr);
    const auto &layout = exp.kern().layout();

    // core/attribution counts kernel-mode D-misses by the executing
    // routine; the profiler keys misses by the same context snapshot,
    // so the per-routine sums must agree exactly.
    for (const char *name : {"bcopy", "bclear"}) {
        const auto rid = layout.routine(name);
        uint64_t got = 0;
        for (const auto &e : pf->entries()) {
            if (e.mode != ExecMode::Kernel || e.routine != rid)
                continue;
            for (uint32_t c = 0; c < profileMissSlots; ++c)
                got += e.missesD[c];
        }
        EXPECT_EQ(got, exp.attribution().blockOpMissesOf(name))
            << name;
    }
}

TEST(Profiler, CollapsedStacksAreSortedAndNamed)
{
    Experiment exp(observedConfig(WorkloadKind::Pmake));
    exp.run();
    const auto *pf = exp.machine().profiler();
    ASSERT_NE(pf, nullptr);

    const std::string out = pf->collapsed();
    ASSERT_FALSE(out.empty());
    EXPECT_NE(out.find("kernel;"), std::string::npos) << out;
    EXPECT_NE(out.find("user "), std::string::npos) << out;

    // "frame[;frame...] cycles" lines, most cycles first.
    uint64_t prev = ~uint64_t(0);
    std::istringstream in(out);
    std::string line;
    while (std::getline(in, line)) {
        const size_t sp = line.rfind(' ');
        ASSERT_NE(sp, std::string::npos) << line;
        const uint64_t cycles =
            std::strtoull(line.c_str() + sp + 1, nullptr, 10);
        EXPECT_LE(cycles, prev) << "not sorted: " << line;
        prev = cycles;
    }
}
