/** @file Tests for attribution, functional classes, invocation stats,
 *  lock statistics, stall math, and the I-cache re-simulation. */

#include <gtest/gtest.h>

#include "core/ap_dispos.hh"
#include "core/attribution.hh"
#include "core/functional_class.hh"
#include "core/invocation_stats.hh"
#include "core/lock_stats.hh"
#include "core/migration.hh"
#include "core/resim.hh"
#include "core/stall.hh"
#include "kernel/layout.hh"

using namespace mpos;
using namespace mpos::core;
using kernel::KernelLayout;
using kernel::KStruct;
using kernel::LayoutConfig;
using sim::BusOp;
using sim::BusRecord;
using sim::CacheKind;
using sim::ExecMode;
using sim::LockEvent;
using sim::MonitorContext;
using sim::OsOp;

namespace
{

ClassifiedMiss
mkMiss(const KernelLayout &l, sim::Addr addr, MissClass cls,
       CacheKind k = CacheKind::Data, uint16_t routine = 0xffff,
       ExecMode mode = ExecMode::Kernel, OsOp op = OsOp::IoSyscall)
{
    (void)l;
    ClassifiedMiss m;
    m.rec = BusRecord{0, 0, addr, BusOp::Read, k,
                      MonitorContext{mode, op, routine, 1}};
    m.cls = cls;
    return m;
}

} // namespace

TEST(Attribution, SharingOnPerProcessStructsIsMigration)
{
    KernelLayout l(LayoutConfig{});
    Attribution a(l);
    const uint16_t swtch = l.routine("swtch");
    a.onMiss(mkMiss(l, l.kernelStackAddr(3) + 64, MissClass::Sharing,
                    CacheKind::Data, swtch));
    a.onMiss(mkMiss(l, l.pcbAddr(3), MissClass::Sharing,
                    CacheKind::Data, swtch));
    a.onMiss(mkMiss(l, l.procTableAddr(3), MissClass::Sharing,
                    CacheKind::Data, swtch));
    EXPECT_EQ(a.migrationKernelStack(), 1u);
    EXPECT_EQ(a.migrationUserStruct(), 1u);
    EXPECT_EQ(a.migrationProcTable(), 1u);
    EXPECT_EQ(a.migrationTotal(), 3u);
    EXPECT_EQ(a.migrationByGroup(kernel::RoutineGroup::RunQueueMgmt),
              3u);
}

TEST(Attribution, NonSharingMissesAreNotMigration)
{
    KernelLayout l(LayoutConfig{});
    Attribution a(l);
    a.onMiss(mkMiss(l, l.kernelStackAddr(3), MissClass::Dispos));
    EXPECT_EQ(a.migrationTotal(), 0u);
}

TEST(Attribution, BlockOpRoutineAttribution)
{
    KernelLayout l(LayoutConfig{});
    Attribution a(l);
    const uint16_t bcopy = l.routine("bcopy");
    const sim::Addr user = l.firstUserPage() * 4096;
    a.onMiss(mkMiss(l, user, MissClass::Cold, CacheKind::Data, bcopy));
    a.onMiss(mkMiss(l, user + 16, MissClass::Dispap, CacheKind::Data,
                    bcopy));
    EXPECT_EQ(a.blockOpMissesOf("bcopy"), 2u);
    EXPECT_EQ(a.blockOpDMissesTotal(), 2u);
}

TEST(Attribution, SharingOnBlockOpPagesGoesToDynamicBuckets)
{
    KernelLayout l(LayoutConfig{});
    Attribution a(l);
    const uint16_t bcopy = l.routine("bcopy");
    const sim::Addr user = l.firstUserPage() * 4096;
    a.onMiss(mkMiss(l, user, MissClass::Sharing, CacheKind::Data,
                    bcopy));
    EXPECT_EQ(a.sharing().bcopyPages, 1u);
    EXPECT_EQ(a.sharing().count[unsigned(KStruct::UserPage)], 0u);
    EXPECT_EQ(a.sharing().total, 1u);
}

TEST(Attribution, DisposInstructionMissesByRoutine)
{
    KernelLayout l(LayoutConfig{});
    Attribution a(l);
    const auto namei = l.routine("namei");
    const auto &info = l.routineInfo(namei);
    a.onMiss(mkMiss(l, info.textBase + 32, MissClass::Dispos,
                    CacheKind::Instr));
    EXPECT_EQ(a.disposMissesOfRoutine(namei), 1u);
}

TEST(Attribution, UserModeMissesIgnored)
{
    KernelLayout l(LayoutConfig{});
    Attribution a(l);
    a.onMiss(mkMiss(l, l.procTableAddr(1), MissClass::Sharing,
                    CacheKind::Data, 0xffff, ExecMode::User,
                    OsOp::None));
    EXPECT_EQ(a.sharing().total, 0u);
}

TEST(FunctionalClass, SplitsByOperationAndKind)
{
    KernelLayout l(LayoutConfig{});
    FunctionalClass f;
    f.onMiss(mkMiss(l, 0x100, MissClass::Cold, CacheKind::Instr, 0xffff,
                    ExecMode::Kernel, OsOp::IoSyscall));
    f.onMiss(mkMiss(l, 0x200, MissClass::Cold, CacheKind::Data, 0xffff,
                    ExecMode::Kernel, OsOp::UtlbFault));
    f.onMiss(mkMiss(l, 0x300, MissClass::Cold, CacheKind::Data, 0xffff,
                    ExecMode::Kernel, OsOp::CheapTlbFault));
    EXPECT_EQ(f.iMisses(OsOp::IoSyscall), 1u);
    EXPECT_EQ(f.cheapTlbD(), 2u); // UTLB folded into cheap (Table 8)
    EXPECT_EQ(f.totalI(), 1u);
    EXPECT_EQ(f.totalD(), 2u);
}

TEST(InvocationStats, SegmentsAndHistograms)
{
    InvocationStats inv(1);
    const MonitorContext ctx;
    // App runs 0..100, OS invocation 100..500 with two misses.
    inv.osEnter(100, 0, OsOp::IoSyscall);
    BusRecord r{150, 0, 0x100, BusOp::Read, CacheKind::Instr, ctx};
    inv.busTransaction(r);
    r.cache = CacheKind::Data;
    inv.busTransaction(r);
    inv.osExit(500, 0, OsOp::IoSyscall);
    // Another app stretch with a UTLB spike inside it.
    inv.osEnter(600, 0, OsOp::UtlbFault);
    inv.osExit(640, 0, OsOp::UtlbFault);
    inv.osEnter(1000, 0, OsOp::OtherSyscall);
    inv.osExit(1100, 0, OsOp::OtherSyscall);

    EXPECT_EQ(inv.osInvocations().count, 2u);
    EXPECT_EQ(inv.utlbFaults().count, 1u);
    EXPECT_DOUBLE_EQ(inv.utlbFaults().meanCycles(), 40.0);
    EXPECT_DOUBLE_EQ(inv.osInvocations().meanI(), 0.5);
    EXPECT_DOUBLE_EQ(inv.osInvocations().meanD(), 0.5);
    // Two app invocations: [0,100] and [500,1000] minus the spike.
    EXPECT_EQ(inv.appInvocations().count, 2u);
    EXPECT_DOUBLE_EQ(inv.utlbPerAppInvocation(), 0.5);
    EXPECT_EQ(inv.osInvCycleHist().count(), 2u);
}

TEST(InvocationStats, IdleSegmentsExcludedFromApp)
{
    InvocationStats inv(1);
    inv.osEnter(0, 0, OsOp::IdleLoop);
    inv.osExit(5000, 0, OsOp::IdleLoop);
    EXPECT_EQ(inv.idleSegments().count, 1u);
    EXPECT_EQ(inv.appInvocations().count, 0u);
}

TEST(LockStats, ProfileBasics)
{
    LockStats ls(4);
    ls.lockEvent(100, 0, 1, LockEvent::AcquireSuccess, 0);
    ls.lockEvent(150, 0, 1, LockEvent::Release, 0);
    ls.lockEvent(1100, 0, 1, LockEvent::AcquireSuccess, 0);
    ls.lockEvent(1150, 0, 1, LockEvent::Release, 1);
    const auto &p = ls.profile(1);
    EXPECT_EQ(p.acquires, 2u);
    EXPECT_DOUBLE_EQ(p.acquireInterval(), 1000.0);
    // Same CPU both times, nobody else touched it in between.
    EXPECT_DOUBLE_EQ(p.sameCpuFraction(), 1.0);
    EXPECT_EQ(p.releasesWithWaiters, 1u);
    EXPECT_DOUBLE_EQ(p.waitersIfAny(), 1.0);
}

TEST(LockStats, DisturbedLocalityBreaksRun)
{
    LockStats ls(4);
    ls.lockEvent(0, 0, 1, LockEvent::AcquireSuccess, 0);
    ls.lockEvent(10, 0, 1, LockEvent::Release, 0);
    ls.lockEvent(20, 1, 1, LockEvent::AcquireFail, 0); // other CPU
    ls.lockEvent(30, 0, 1, LockEvent::AcquireSuccess, 0);
    EXPECT_DOUBLE_EQ(ls.profile(1).sameCpuFraction(), 0.0);
}

TEST(LockStats, FailEpisodesCountSpinsOnce)
{
    LockStats ls(4);
    for (int i = 0; i < 20; ++i)
        ls.lockEvent(Cycle(i), 2, 1, LockEvent::AcquireFail, 1);
    ls.lockEvent(100, 2, 1, LockEvent::AcquireSuccess, 0);
    EXPECT_EQ(ls.profile(1).failEpisodes, 1u);
    EXPECT_GT(ls.failsPerMs(1, 33000), 0.0);
}

TEST(LockStats, HighCpusDoNotAliasFailEpisodes)
{
    // Episode tracking is per CPU up to the 64-CPU machine cap: a
    // spinner on CPU 32 must not alias CPU 0's in-episode bit (the
    // old 32-slot table masked with cpu & 31 and merged them).
    LockStats ls(4);
    ls.lockEvent(0, 32, 1, LockEvent::AcquireFail, 1);
    ls.lockEvent(1, 0, 1, LockEvent::AcquireFail, 2);
    ls.lockEvent(2, 63, 1, LockEvent::AcquireFail, 3);
    EXPECT_EQ(ls.profile(1).failEpisodes, 3u);
    // Continued spinning by the same CPUs stays within one episode.
    ls.lockEvent(3, 32, 1, LockEvent::AcquireFail, 3);
    ls.lockEvent(4, 63, 1, LockEvent::AcquireFail, 3);
    EXPECT_EQ(ls.profile(1).failEpisodes, 3u);
    // Success ends CPU 32's episode; its next fail starts a new one.
    ls.lockEvent(5, 32, 1, LockEvent::AcquireSuccess, 2);
    ls.lockEvent(6, 32, 1, LockEvent::AcquireFail, 3);
    EXPECT_EQ(ls.profile(1).failEpisodes, 4u);
}

TEST(StallModel, PaperMath)
{
    // 1000 misses x 35 cycles over 100000 non-idle cycles = 35%.
    EXPECT_DOUBLE_EQ(stallPct(1000, 100000, 35), 35.0);
    EXPECT_DOUBLE_EQ(stallPct(100, 0), 0.0);
}

TEST(StallModel, Table1Composition)
{
    sim::CycleAccount acct;
    acct.total[unsigned(ExecMode::User)] = 6000;
    acct.total[unsigned(ExecMode::Kernel)] = 3000;
    acct.total[unsigned(ExecMode::Idle)] = 1000;
    MissCounts mc;
    mc.osI[unsigned(MissClass::Cold)] = 10;
    mc.appD[unsigned(MissClass::Cold)] = 20;
    mc.appD[unsigned(MissClass::Dispos)] = 10;
    const auto t1 = computeTable1(acct, mc, 35);
    EXPECT_DOUBLE_EQ(t1.userPct, 60.0);
    EXPECT_DOUBLE_EQ(t1.sysPct, 30.0);
    EXPECT_DOUBLE_EQ(t1.idlePct, 10.0);
    EXPECT_DOUBLE_EQ(t1.osMissFracPct, 25.0);
    EXPECT_DOUBLE_EQ(t1.allMissStallPct,
                     100.0 * 40 * 35 / 9000.0);
    EXPECT_DOUBLE_EQ(t1.osPlusInducedStallPct,
                     100.0 * 20 * 35 / 9000.0);
}

TEST(StallModel, Table9RowsSumToTotal)
{
    sim::CycleAccount acct;
    acct.total[unsigned(ExecMode::Kernel)] = 100000;
    MissCounts mc;
    mc.osI[unsigned(MissClass::Cold)] = 60;
    mc.osD[unsigned(MissClass::Sharing)] = 40;
    const auto t9 = computeTable9(acct, mc, 10, 5, 35);
    EXPECT_NEAR(t9.instrPct + t9.migrationPct + t9.blockOpPct +
                    t9.restPct,
                t9.totalPct, 1e-9);
}

TEST(ApDispos, Fractions)
{
    MissCounts mc;
    mc.appI[unsigned(MissClass::Dispos)] = 10;
    mc.appD[unsigned(MissClass::Dispos)] = 15;
    mc.appI[unsigned(MissClass::Cold)] = 40;
    mc.appD[unsigned(MissClass::Cold)] = 35;
    const auto r = computeApDispos(mc);
    EXPECT_DOUBLE_EQ(r.fracOfAppPct, 25.0);
    EXPECT_DOUBLE_EQ(r.iShareOfAppPct, 10.0);
    EXPECT_DOUBLE_EQ(r.dShareOfAppPct, 15.0);
}

TEST(Resim, BiggerCacheRemovesConflicts)
{
    ICacheResim rs(1, 16);
    // Two lines that conflict in a 1 KB cache but not in 2 KB.
    ClassifiedMiss m;
    m.rec.cache = CacheKind::Instr;
    m.rec.ctx.mode = ExecMode::Kernel;
    m.rec.cpu = 0;
    for (int i = 0; i < 10; ++i) {
        m.rec.lineAddr = 0x0;
        rs.onMiss(m);
        m.rec.lineAddr = 0x400;
        rs.onMiss(m);
    }
    const auto small = rs.simulate(1024, 1);
    const auto big = rs.simulate(2048, 1);
    EXPECT_EQ(small.osMisses, 20u);
    EXPECT_EQ(big.osMisses, 2u); // only the cold fills
    EXPECT_LT(big.relativeOsMissRate, small.relativeOsMissRate);
}

TEST(Resim, AssociativityRemovesConflicts)
{
    ICacheResim rs(1, 16);
    ClassifiedMiss m;
    m.rec.cache = CacheKind::Instr;
    m.rec.ctx.mode = ExecMode::Kernel;
    for (int i = 0; i < 10; ++i) {
        m.rec.lineAddr = 0x0;
        rs.onMiss(m);
        m.rec.lineAddr = 0x400;
        rs.onMiss(m);
    }
    EXPECT_EQ(rs.simulate(1024, 2).osMisses, 2u);
}

TEST(Resim, InvalFloorSurvivesBiggerCaches)
{
    ICacheResim rs(1, 16);
    ClassifiedMiss m;
    m.rec.cache = CacheKind::Instr;
    m.rec.ctx.mode = ExecMode::Kernel;
    for (int i = 0; i < 50; ++i) {
        m.rec.lineAddr = 0x1000;
        rs.onMiss(m);
        rs.flushPage(0, 0x1000, 4096); // page realloc each round
    }
    const auto with = rs.simulate(1 << 20, 2, true);
    const auto without = rs.simulate(1 << 20, 2, false);
    EXPECT_EQ(with.osMisses, 50u);   // flushes keep forcing misses
    EXPECT_EQ(without.osMisses, 1u); // dashed no-Inval curve
}

TEST(Resim, DataMissesIgnored)
{
    ICacheResim rs(1, 16);
    ClassifiedMiss m;
    m.rec.cache = CacheKind::Data;
    rs.onMiss(m);
    EXPECT_EQ(rs.recordedEvents(), 0u);
}

TEST(Migration, ReportComposition)
{
    KernelLayout l(LayoutConfig{});
    Attribution a(l);
    const uint16_t swtch = l.routine("swtch");
    for (int i = 0; i < 10; ++i)
        a.onMiss(mkMiss(l, l.kernelStackAddr(1), MissClass::Sharing,
                        CacheKind::Data, swtch));
    MissCounts mc;
    mc.osD[unsigned(MissClass::Sharing)] = 40;
    sim::CycleAccount acct;
    acct.total[unsigned(ExecMode::Kernel)] = 1000000;
    const auto r = computeMigration(a, mc, acct, 35);
    EXPECT_DOUBLE_EQ(r.kernelStackPctOfOsD, 25.0);
    EXPECT_DOUBLE_EQ(r.totalPctOfOsD, 25.0);
    const auto ops = computeMigrationOps(a);
    EXPECT_DOUBLE_EQ(ops.runQueuePct, 100.0);
}
